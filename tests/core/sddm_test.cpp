// SddmSolver and solve_dirichlet tests: exactness against dense solves of
// the nonsingular system, harmonic-extension properties (maximum
// principle, interpolation), and edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "core/sddm.hpp"
#include "graph/generators.hpp"
#include "linalg/dense.hpp"
#include "support/rng.hpp"

namespace parlap {
namespace {

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Vector v(n);
  Rng rng(seed, RngTag::kTest, 4);
  for (auto& x : v) x = rng.next_in(-1.0, 1.0);
  return v;
}

/// Dense M = L + diag(excess).
DenseMatrix sddm_dense(const Multigraph& g, std::span<const double> excess) {
  DenseMatrix m = laplacian_dense(g);
  for (int i = 0; i < m.rows(); ++i) m(i, i) += excess[static_cast<std::size_t>(i)];
  return m;
}

TEST(Sddm, MatchesDenseSolve) {
  Multigraph g = make_erdos_renyi(80, 320, 1);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 2);
  Vector excess(80, 0.0);
  Rng rng(3, RngTag::kTest, 5);
  for (auto& s : excess) s = rng.next_double() < 0.3 ? rng.next_in(0.1, 2.0) : 0.0;
  excess[0] = 1.0;  // ensure nonsingular

  SddmSolver solver(g, excess);
  const Vector b = random_vector(80, 4);
  Vector x(80, 0.0);
  const SolveStats st = solver.solve(b, x, 1e-10);
  EXPECT_TRUE(st.converged);

  const DenseMatrix m = sddm_dense(g, excess);
  const DenseMatrix minv = pseudo_inverse(m);
  const Vector want = minv.apply(b);
  for (std::size_t i = 0; i < 80; ++i) EXPECT_NEAR(x[i], want[i], 1e-6);
}

TEST(Sddm, IdentityShiftActsLikeRegularization) {
  // (L + c I) x = b for large c approaches x = b / c.
  const Multigraph g = make_grid2d(6, 6);
  const double c = 1e6;
  const Vector excess(36, c);
  SddmSolver solver(g, excess);
  const Vector b = random_vector(36, 7);
  Vector x(36, 0.0);
  solver.solve(b, x, 1e-10);
  for (std::size_t i = 0; i < 36; ++i) EXPECT_NEAR(x[i], b[i] / c, 1e-9);
}

TEST(Sddm, ZeroExcessFallsBackToLaplacian) {
  const Multigraph g = make_cycle(30);
  const Vector excess(30, 0.0);
  SddmSolver solver(g, excess);
  Vector b = random_vector(30, 9);
  project_out_ones(b);
  Vector x(30, 0.0);
  const SolveStats st = solver.solve(b, x, 1e-8);
  EXPECT_TRUE(st.converged);
  const LaplacianOperator op(g);
  const Vector lx = op.apply(x);
  for (std::size_t i = 0; i < 30; ++i) EXPECT_NEAR(lx[i], b[i], 1e-6);
}

TEST(Sddm, RejectsNegativeExcess) {
  const Multigraph g = make_path(4);
  const Vector excess{0.0, -0.1, 0.0, 0.0};
  EXPECT_THROW(SddmSolver(g, excess), std::runtime_error);
}

TEST(Dirichlet, HarmonicExtensionInterpolatesLinearFunction) {
  // On a path with ends fixed at 0 and 1, the harmonic extension is the
  // linear interpolation.
  const Vertex n = 21;
  const Multigraph g = make_path(n);
  const std::vector<Vertex> boundary{0, n - 1};
  const Vector values{0.0, 1.0};
  Vector x(static_cast<std::size_t>(n), 0.0);
  const SolveStats st = solve_dirichlet(g, boundary, values, {}, x, 1e-10);
  EXPECT_TRUE(st.converged);
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_NEAR(x[static_cast<std::size_t>(v)],
                static_cast<double>(v) / (n - 1), 1e-7);
  }
}

TEST(Dirichlet, MaximumPrinciple) {
  // Harmonic functions attain extrema on the boundary.
  Multigraph g = make_erdos_renyi(100, 400, 11);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 12);
  const std::vector<Vertex> boundary{3, 47, 90};
  const Vector values{-2.0, 0.5, 3.0};
  Vector x(100, 0.0);
  solve_dirichlet(g, boundary, values, {}, x, 1e-10);
  for (const double v : x) {
    EXPECT_GE(v, -2.0 - 1e-7);
    EXPECT_LE(v, 3.0 + 1e-7);
  }
  EXPECT_DOUBLE_EQ(x[3], -2.0);
  EXPECT_DOUBLE_EQ(x[47], 0.5);
  EXPECT_DOUBLE_EQ(x[90], 3.0);
}

TEST(Dirichlet, MatchesDenseBlockSolve) {
  Multigraph g = make_grid2d(7, 7);
  const std::vector<Vertex> boundary{0, 6, 42, 48};
  const Vector values{1.0, -1.0, 2.0, 0.0};
  const Vector rhs = random_vector(45, 13);  // 49 - 4 interior vertices
  Vector x(49, 0.0);
  solve_dirichlet(g, boundary, values, rhs, x, 1e-10);

  // Dense check: L x restricted to interior equals rhs.
  const DenseMatrix l = laplacian_dense(g);
  const Vector lx = l.apply(x);
  std::size_t ri = 0;
  for (Vertex v = 0; v < 49; ++v) {
    if (v == 0 || v == 6 || v == 42 || v == 48) continue;
    EXPECT_NEAR(lx[static_cast<std::size_t>(v)], rhs[ri], 1e-6);
    ++ri;
  }
}

TEST(Dirichlet, AllBoundaryIsCopy) {
  const Multigraph g = make_path(3);
  const std::vector<Vertex> boundary{0, 1, 2};
  const Vector values{5.0, 6.0, 7.0};
  Vector x(3, 0.0);
  const SolveStats st = solve_dirichlet(g, boundary, values, {}, x, 1e-8);
  EXPECT_TRUE(st.converged);
  EXPECT_DOUBLE_EQ(x[0], 5.0);
  EXPECT_DOUBLE_EQ(x[1], 6.0);
  EXPECT_DOUBLE_EQ(x[2], 7.0);
}

TEST(Dirichlet, EmptyBoundaryThrows) {
  const Multigraph g = make_path(4);
  Vector x(4, 0.0);
  EXPECT_THROW((void)solve_dirichlet(g, {}, {}, {}, x, 0.5),
               std::runtime_error);
}

}  // namespace
}  // namespace parlap
