// Leverage-score overestimation tests (Lemma 3.3, §6): estimates stay in
// (0,1], overestimate the exact scores on small graphs (statistically,
// with the default safety factor), and drive splitting correctly.
#include <gtest/gtest.h>

#include <numeric>

#include "core/alpha_bound.hpp"
#include "core/leverage.hpp"
#include "graph/generators.hpp"
#include "linalg/dense.hpp"

namespace parlap {
namespace {

TEST(Leverage, EstimatesInUnitInterval) {
  Multigraph g = make_erdos_renyi(200, 2000, 1);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 2);
  const Vector tau = leverage_overestimates(g, 3);
  ASSERT_EQ(tau.size(), static_cast<std::size_t>(g.num_edges()));
  for (const double t : tau) {
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

TEST(Leverage, OverestimatesExactScores) {
  // On a small graph the JL+subsample estimate with safety 4 should
  // dominate the exact leverage for essentially all edges; allow a tiny
  // slack fraction for JL fluctuation.
  Multigraph g = make_erdos_renyi(80, 800, 5);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 6);
  const Vector exact = leverage_scores_dense(g);
  const Vector est = leverage_overestimates(g, 7);
  int underestimated = 0;
  for (std::size_t e = 0; e < exact.size(); ++e) {
    if (est[e] < exact[e] - 1e-9) ++underestimated;
    // Never catastrophically low.
    EXPECT_GT(est[e], 0.2 * exact[e]);
  }
  EXPECT_LE(underestimated, static_cast<int>(exact.size() / 20));
}

TEST(Leverage, TreeEdgesGetScoreNearOne) {
  // Bridges have exact leverage 1; the clamped overestimate must be ~1.
  const Multigraph g = make_binary_tree(63);
  const Vector est = leverage_overestimates(g, 9);
  for (const double t : est) EXPECT_GT(t, 0.8);
}

TEST(Leverage, DenseGraphMostEdgesUnsplit) {
  // K_60: exact tau = 2/60 per edge; the estimate keeps totals near n.
  const Multigraph g = make_complete(60);
  const Vector est = leverage_overestimates(g, 11);
  double total = 0.0;
  for (const double t : est) total += t;
  // Sum of exact scores is n-1 = 59; safety 4 allows ~4x plus JL noise.
  EXPECT_LT(total, 59.0 * 8.0);
  // Splitting with alpha = 0.1 must stay well below uniform splitting.
  const Multigraph split = split_edges_by_scores(g, est, 0.1);
  const Multigraph uniform = split_edges_uniform(g, 10);
  EXPECT_LT(split.num_edges(), uniform.num_edges() / 2);
}

TEST(Leverage, Deterministic) {
  const Multigraph g = make_erdos_renyi(100, 600, 13);
  const Vector a = leverage_overestimates(g, 15);
  const Vector b = leverage_overestimates(g, 15);
  for (std::size_t e = 0; e < a.size(); ++e) EXPECT_EQ(a[e], b[e]);
}

TEST(Leverage, CustomOptionsRespected) {
  const Multigraph g = make_erdos_renyi(120, 900, 17);
  LeverageOptions opts;
  opts.sample_divisor = 4;
  opts.jl_dimensions = 10;
  opts.safety = 2.0;
  const Vector tau = leverage_overestimates(g, 19, opts);
  for (const double t : tau) {
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

TEST(Leverage, RequiresConnectedGraph) {
  Multigraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_THROW((void)leverage_overestimates(g, 1), std::runtime_error);
}

}  // namespace
}  // namespace parlap
