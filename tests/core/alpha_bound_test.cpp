// Lemma 3.2 / Lemma 3.3 step (3): edge splitting preserves the Laplacian
// exactly and bounds every multi-edge's leverage score by alpha.
#include <gtest/gtest.h>

#include <cmath>

#include "core/alpha_bound.hpp"
#include "graph/generators.hpp"
#include "linalg/dense.hpp"

namespace parlap {
namespace {

TEST(DefaultSplitCopies, ScalesWithLogSquared) {
  EXPECT_EQ(default_split_copies(2, 1.0), 1);
  EXPECT_EQ(default_split_copies(1024, 1.0), 100);  // ceil(log2)=10 -> 100
  EXPECT_EQ(default_split_copies(1024, 0.1), 10);
  EXPECT_EQ(default_split_copies(1 << 20, 1.0), 400);
  // Never below one copy.
  EXPECT_EQ(default_split_copies(1 << 20, 1e-9), 1);
  EXPECT_DOUBLE_EQ(default_alpha(1024, 1.0), 0.01);
}

TEST(SplitUniform, LaplacianUnchanged) {
  Multigraph g = make_erdos_renyi(20, 60, 1);
  apply_weights(g, WeightModel::uniform(0.3, 2.0), 2);
  const Multigraph h = split_edges_uniform(g, 7);
  EXPECT_EQ(h.num_edges(), 7 * g.num_edges());
  EXPECT_LT(laplacian_dense(h).max_abs_diff(laplacian_dense(g)), 1e-12);
}

TEST(SplitUniform, OneCopyIsIdentity) {
  const Multigraph g = make_grid2d(3, 3);
  const Multigraph h = split_edges_uniform(g, 1);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge_u(e), g.edge_u(e));
    EXPECT_DOUBLE_EQ(h.edge_weight(e), g.edge_weight(e));
  }
}

TEST(SplitUniform, CopiesAreAlphaBounded) {
  // Simple-graph edges have tau <= 1, so k copies are 1/k-bounded
  // (Lemma 3.2). Verify against exact leverage scores.
  Multigraph g = make_erdos_renyi(15, 40, 3);
  apply_weights(g, WeightModel::power_law(0.1, 10.0, 2.0), 4);
  const std::int64_t copies = 5;
  const Multigraph h = split_edges_uniform(g, copies);
  const Vector tau = leverage_scores_dense(h);
  const double alpha = 1.0 / static_cast<double>(copies);
  for (const double t : tau) EXPECT_LE(t, alpha + 1e-9);
}

TEST(SplitByScores, LaplacianUnchangedAndBounded) {
  Multigraph g = make_erdos_renyi(15, 50, 5);
  apply_weights(g, WeightModel::uniform(0.5, 5.0), 6);
  const Vector tau_exact = leverage_scores_dense(g);
  const double alpha = 0.2;
  const Multigraph h = split_edges_by_scores(g, tau_exact, alpha);
  EXPECT_LT(laplacian_dense(h).max_abs_diff(laplacian_dense(g)), 1e-12);
  // With exact scores every copy is alpha-bounded.
  const Vector tau_h = leverage_scores_dense(h);
  for (const double t : tau_h) EXPECT_LE(t, alpha + 1e-9);
}

TEST(SplitByScores, LowScoreEdgesNotSplit) {
  const Multigraph g = make_complete(10);  // tau = 2/10 per edge
  const Vector tau(static_cast<std::size_t>(g.num_edges()), 0.2);
  const Multigraph h = split_edges_by_scores(g, tau, 0.25);
  EXPECT_EQ(h.num_edges(), g.num_edges());  // ceil(0.2/0.25) = 1
}

TEST(SplitByScores, CopyCountFollowsScores) {
  Multigraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const Vector tau{1.0, 0.1};
  const Multigraph h = split_edges_by_scores(g, tau, 0.25);
  // Edge 0: ceil(1/0.25) = 4 copies; edge 1: 1 copy.
  EXPECT_EQ(h.num_edges(), 5);
}

TEST(SplitUniform, RejectsBadArguments) {
  const Multigraph g = make_path(4);
  EXPECT_THROW((void)split_edges_uniform(g, 0), std::runtime_error);
}

}  // namespace
}  // namespace parlap
