// 5DDSubset tests (Lemma 3.4): the returned set is genuinely 5-DD, large
// enough, found in few rounds, deterministic, and correct on induced
// subgraphs (the ApproxSchur variant).
#include <gtest/gtest.h>

#include <numeric>

#include "core/five_dd.hpp"
#include "graph/generators.hpp"

namespace parlap {
namespace {

FiveDdResult run(const Multigraph& g, std::uint64_t seed,
                 const FiveDdOptions& opts = {}) {
  return five_dd_subset(g, g.weighted_degrees(), seed, opts);
}

class FiveDdFamilyTest : public ::testing::TestWithParam<int> {
 protected:
  Multigraph graph() const {
    switch (GetParam()) {
      case 0:
        return make_grid2d(30, 30);
      case 1:
        return make_random_regular(1000, 4, 1);
      case 2:
        return make_erdos_renyi(800, 4000, 2);
      case 3: {
        Multigraph g = make_rmat(10, 6000, 3);
        apply_weights(g, WeightModel::power_law(0.1, 100.0, 2.5), 4);
        return g;
      }
      case 4:
        return make_barbell(80, 40);
      default:
        return make_star(500);
    }
  }
};

TEST_P(FiveDdFamilyTest, ResultIsFiveDd) {
  const Multigraph g = graph();
  const FiveDdResult r = run(g, 7);
  EXPECT_TRUE(is_five_dd(g, r.f));
}

TEST_P(FiveDdFamilyTest, SizeAtLeastTarget) {
  const Multigraph g = graph();
  const FiveDdResult r = run(g, 7);
  EXPECT_GE(r.f.size(),
            static_cast<std::size_t>(g.num_vertices()) / 40);
}

TEST_P(FiveDdFamilyTest, FewRounds) {
  const Multigraph g = graph();
  const FiveDdResult r = run(g, 7);
  // Lemma 3.4: each round succeeds w.p. >= 1/2; 20 rounds is p <= 1e-6.
  EXPECT_LE(r.rounds, 20);
}

TEST_P(FiveDdFamilyTest, Deterministic) {
  const Multigraph g = graph();
  const FiveDdResult a = run(g, 9);
  const FiveDdResult b = run(g, 9);
  EXPECT_EQ(a.f, b.f);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST_P(FiveDdFamilyTest, BoostKeepsFiveDdAndNeverShrinks) {
  const Multigraph g = graph();
  FiveDdOptions opts;
  const FiveDdResult plain = run(g, 11, opts);
  opts.boost_rounds = 3;
  const FiveDdResult boosted = run(g, 11, opts);
  EXPECT_TRUE(is_five_dd(g, boosted.f));
  EXPECT_GE(boosted.f.size(), plain.f.size());
}

INSTANTIATE_TEST_SUITE_P(Families, FiveDdFamilyTest, ::testing::Range(0, 6));

TEST(FiveDd, SingleVertexCandidateIsAccepted) {
  const Multigraph g = make_path(10);
  const std::vector<Vertex> cand{4};
  const FiveDdResult r = five_dd_subset(g, cand, 1);
  EXPECT_EQ(r.f, cand);  // a singleton is always 5-DD
}

TEST(FiveDd, InducedSubgraphVariant) {
  // Candidates = one half of a barbell; degrees measured within G[U].
  const Multigraph g = make_barbell(40, 10);
  std::vector<Vertex> cand(40);
  std::iota(cand.begin(), cand.end(), Vertex{0});
  const FiveDdResult r = five_dd_subset(g, cand, 3);
  EXPECT_FALSE(r.f.empty());
  for (const Vertex v : r.f) EXPECT_LT(v, 40);
  EXPECT_TRUE(is_five_dd(g, r.f, cand));
}

TEST(FiveDd, InducedFiveDdImpliesGlobalFiveDd) {
  // The §7 observation: a 5-DD subset of an induced subgraph is 5-DD in
  // the whole graph (full degrees only grow).
  const Multigraph g = make_erdos_renyi(300, 2000, 5);
  std::vector<Vertex> cand(150);
  std::iota(cand.begin(), cand.end(), Vertex{0});
  const FiveDdResult r = five_dd_subset(g, cand, 5);
  EXPECT_TRUE(is_five_dd(g, r.f, cand));
  EXPECT_TRUE(is_five_dd(g, r.f));  // also w.r.t. full degrees
}

TEST(FiveDd, IndependentSetInCompleteGraphIsSingleton) {
  // In K_n any two vertices are adjacent with deg n-1; a 5-DD set can
  // contain at most ~n/5 mutual neighbors; the filter must respect it.
  const Multigraph g = make_complete(60);
  const FiveDdResult r = run(g, 13);
  EXPECT_TRUE(is_five_dd(g, r.f));
}

TEST(FiveDd, DifferentSeedsDifferentSubsets) {
  const Multigraph g = make_grid2d(20, 20);
  const FiveDdResult a = run(g, 1);
  const FiveDdResult b = run(g, 2);
  EXPECT_NE(a.f, b.f);
}

TEST(IsFiveDd, RejectsAdjacentPairWithLowDegree) {
  // Two adjacent degree-1 vertices: induced degree = full degree.
  Multigraph g(2);
  g.add_edge(0, 1, 1.0);
  const std::vector<Vertex> f{0, 1};
  EXPECT_FALSE(is_five_dd(g, f));
}

TEST(IsFiveDd, AcceptsIndependentSet) {
  const Multigraph g = make_path(10);
  const std::vector<Vertex> f{0, 2, 4, 6, 8};
  EXPECT_TRUE(is_five_dd(g, f));
}

}  // namespace
}  // namespace parlap
