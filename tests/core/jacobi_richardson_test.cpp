// Lemma 3.5 (truncated Jacobi series on 5-DD matrices) and Theorem 3.8
// (preconditioned Richardson), verified densely.
#include <gtest/gtest.h>

#include <cmath>

#include "core/richardson.hpp"
#include "graph/generators.hpp"
#include "linalg/dense.hpp"
#include "support/rng.hpp"

namespace parlap {
namespace {

/// Builds a dense 5-DD test matrix M = X + Y from a graph: Y = L_G[F]
/// with X chosen so row sums dominate 5x.
struct FiveDdMatrix {
  DenseMatrix m;  // X + Y
  DenseMatrix x;  // diagonal
  DenseMatrix y;  // Laplacian part
};

FiveDdMatrix make_five_dd_matrix(int n, std::uint64_t seed) {
  Multigraph g = make_erdos_renyi(n, 2 * n, seed, /*ensure_connected=*/true);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), seed + 1);
  FiveDdMatrix out;
  out.y = laplacian_dense(g);
  out.x = DenseMatrix(n, n);
  for (int i = 0; i < n; ++i) {
    // Off-diagonal row sum of M is the weighted degree; require
    // M_ii = X_ii + deg >= 5 deg, i.e. X_ii >= 4 deg.
    out.x(i, i) = 4.0 * out.y(i, i) + 0.1;
  }
  out.m = out.x.add(out.y);
  return out;
}

/// Z = sum_{i=0}^{l} X^-1 (-Y X^-1)^i, densely.
DenseMatrix jacobi_series(const FiveDdMatrix& fd, int l) {
  const int n = fd.m.rows();
  DenseMatrix x_inv(n, n);
  for (int i = 0; i < n; ++i) x_inv(i, i) = 1.0 / fd.x(i, i);
  DenseMatrix term = x_inv;  // i = 0
  DenseMatrix z = term;
  for (int i = 1; i <= l; ++i) {
    term = term.multiply(fd.y).multiply(x_inv);
    // Alternating sign: (-YX^-1)^i.
    z = z.add(term, i % 2 == 0 ? 1.0 : -1.0);
  }
  return z;
}

class JacobiLemmaTest : public ::testing::TestWithParam<int> {};

TEST_P(JacobiLemmaTest, SandwichBoundHolds) {
  // Lemma 3.5: for odd l >= log2(3/eps), M <= Z^-1 <= M + eps Y.
  const int l = GetParam();
  const double eps = 3.0 / std::pow(2.0, l);
  const FiveDdMatrix fd = make_five_dd_matrix(24, 7);
  const DenseMatrix z = jacobi_series(fd, l);
  const DenseMatrix z_inv = pseudo_inverse(z);  // Z is PD here

  // M <= Z^-1  <=>  Z^-1 - M is PSD.
  {
    DenseMatrix diff = z_inv.add(fd.m, -1.0);
    diff.symmetrize();
    const EigenDecomposition eig = symmetric_eigen(std::move(diff));
    EXPECT_GE(eig.values.front(), -1e-7);
  }
  // Z^-1 <= M + eps Y.
  {
    DenseMatrix upper = fd.m.add(fd.y, eps);
    DenseMatrix diff = upper.add(z_inv, -1.0);
    diff.symmetrize();
    const EigenDecomposition eig = symmetric_eigen(std::move(diff));
    EXPECT_GE(eig.values.front(), -1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(SeriesLengths, JacobiLemmaTest,
                         ::testing::Values(1, 3, 5, 7, 9));

TEST(JacobiLemma, LongerSeriesTighter) {
  const FiveDdMatrix fd = make_five_dd_matrix(20, 9);
  double prev_gap = 1e300;
  for (const int l : {1, 3, 5, 7}) {
    const DenseMatrix z = jacobi_series(fd, l);
    const DenseMatrix z_inv = pseudo_inverse(z);
    const double gap = z_inv.add(fd.m, -1.0).frobenius_norm();
    EXPECT_LT(gap, prev_gap);
    prev_gap = gap;
  }
}

// ---------------------------------------------------------------------

TEST(Richardson, ExactPreconditionerOneShot) {
  const Multigraph g = make_grid2d(6, 6);
  const LaplacianOperator op(g);
  const DenseMatrix pinv = pseudo_inverse(laplacian_dense(g));
  const LinearMap precond = [&](std::span<const double> r,
                                std::span<double> y) {
    const Vector out = pinv.apply(r);
    std::copy(out.begin(), out.end(), y.begin());
  };
  Vector b(36);
  Rng rng(1, RngTag::kTest, 0);
  for (auto& v : b) v = rng.next_in(-1.0, 1.0);
  project_out_ones(b);
  Vector x(36, 0.0);
  RichardsonOptions opts;
  opts.delta = 1e-6;
  opts.auto_step = false;  // test the paper's alpha = 2/(e^-d + e^d)
  const IterationStats st =
      preconditioned_richardson(op, precond, b, x, 1e-10, opts);
  EXPECT_TRUE(st.reached_target);
  EXPECT_LE(st.iterations, 2);
}

TEST(Richardson, AutoStepSurvivesMiscalibratedPreconditioner) {
  // B = e^2 L^+ is far outside the delta = 1 window: the paper's fixed
  // alpha diverges (alpha * lambda_max ~ 0.648 e^2 > 2), while the
  // power-iteration step size converges.
  const Multigraph g = make_cycle(40);
  const LaplacianOperator op(g);
  const DenseMatrix pinv = pseudo_inverse(laplacian_dense(g));
  const double c = std::exp(2.0);
  const LinearMap precond = [&](std::span<const double> r,
                                std::span<double> y) {
    const Vector out = pinv.apply(r);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] = c * out[i];
  };
  Vector b(40);
  Rng rng(5, RngTag::kTest, 0);
  for (auto& v : b) v = rng.next_in(-1.0, 1.0);
  project_out_ones(b);

  RichardsonOptions fixed;
  fixed.auto_step = false;
  fixed.delta = 1.0;  // wrong: actual delta is 2
  fixed.max_iterations = 60;
  Vector x1(40, 0.0);
  const IterationStats diverged =
      preconditioned_richardson(op, precond, b, x1, 1e-8, fixed);
  EXPECT_FALSE(diverged.reached_target);

  RichardsonOptions autod;
  autod.max_iterations = 60;
  Vector x2(40, 0.0);
  const IterationStats converged =
      preconditioned_richardson(op, precond, b, x2, 1e-8, autod);
  EXPECT_TRUE(converged.reached_target);
}

TEST(Richardson, ScaledPreconditionerConvergesAtTheoryRate) {
  // B = c * L^+ is a delta-approximation with delta = |ln c|; Richardson
  // must still converge within the e^{2 delta} log(1/eps) budget.
  const Multigraph g = make_cycle(40);
  const LaplacianOperator op(g);
  const DenseMatrix pinv = pseudo_inverse(laplacian_dense(g));
  const double c = std::exp(0.8);
  const LinearMap precond = [&](std::span<const double> r,
                                std::span<double> y) {
    const Vector out = pinv.apply(r);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] = c * out[i];
  };
  Vector b(40);
  Rng rng(2, RngTag::kTest, 0);
  for (auto& v : b) v = rng.next_in(-1.0, 1.0);
  project_out_ones(b);
  Vector x(40, 0.0);
  RichardsonOptions opts;
  opts.delta = 0.8;
  opts.auto_step = false;  // measure the paper's fixed-alpha rate
  opts.residual_target = 1e-10;
  const double eps = 1e-10;
  const IterationStats st = preconditioned_richardson(op, precond, b, x, eps, opts);
  EXPECT_TRUE(st.reached_target);
  EXPECT_LE(st.iterations, static_cast<int>(std::ceil(
                               std::exp(1.6) * std::log(1.0 / eps))) +
                               1);
}

TEST(Richardson, ZeroRhsReturnsZero) {
  const Multigraph g = make_path(10);
  const LaplacianOperator op(g);
  const LinearMap identity_map = [](std::span<const double> r,
                                    std::span<double> y) {
    std::copy(r.begin(), r.end(), y.begin());
  };
  const Vector b(10, 0.0);
  Vector x(10, 5.0);
  const IterationStats st =
      preconditioned_richardson(op, identity_map, b, x, 0.5);
  EXPECT_TRUE(st.reached_target);
  for (const double v : x) EXPECT_EQ(v, 0.0);
}

TEST(Richardson, IterationCapRespected) {
  const Multigraph g = make_path(200);  // terrible conditioning
  const LaplacianOperator op(g);
  const LinearMap identity_map = [](std::span<const double> r,
                                    std::span<double> y) {
    std::copy(r.begin(), r.end(), y.begin());
  };
  Vector b(200);
  Rng rng(3, RngTag::kTest, 0);
  for (auto& v : b) v = rng.next_in(-1.0, 1.0);
  project_out_ones(b);
  Vector x(200, 0.0);
  RichardsonOptions opts;
  opts.max_iterations = 7;
  const IterationStats st =
      preconditioned_richardson(op, identity_map, b, x, 1e-12, opts);
  EXPECT_FALSE(st.reached_target);
  EXPECT_EQ(st.iterations, 7);
}

TEST(Richardson, InvalidEpsThrows) {
  const Multigraph g = make_path(4);
  const LaplacianOperator op(g);
  const LinearMap id_map = [](std::span<const double> r, std::span<double> y) {
    std::copy(r.begin(), r.end(), y.begin());
  };
  const Vector b(4, 0.0);
  Vector x(4);
  EXPECT_THROW((void)preconditioned_richardson(op, id_map, b, x, 1.5),
               std::runtime_error);
}

}  // namespace
}  // namespace parlap
