// BlockCholesky chain tests (Theorems 3.9 and 3.10): structural invariants
// of the chain, linearity/symmetry/PSD-ness of the ApplyCholesky operator,
// and the W ~1 L^+ approximation measured densely on small graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/alpha_bound.hpp"
#include "core/block_cholesky.hpp"
#include "graph/generators.hpp"
#include "linalg/dense.hpp"
#include "support/rng.hpp"

namespace parlap {
namespace {

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Vector x(n);
  Rng rng(seed, RngTag::kTest, 99);
  for (auto& v : x) v = rng.next_in(-1.0, 1.0);
  return x;
}

/// Materializes W as a dense matrix by applying to basis vectors.
DenseMatrix materialize(const BlockCholeskyChain& chain) {
  const int n = chain.dimension();
  DenseMatrix w(n, n);
  ApplyWorkspace ws;
  Vector e(static_cast<std::size_t>(n), 0.0);
  Vector col(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    e[static_cast<std::size_t>(j)] = 1.0;
    chain.apply(e, col, ws);
    for (int i = 0; i < n; ++i) w(i, j) = col[static_cast<std::size_t>(i)];
    e[static_cast<std::size_t>(j)] = 0.0;
  }
  return w;
}

/// P A P with P = I - 11'/n (restrict to the ones-complement).
DenseMatrix project_ones(const DenseMatrix& a) {
  const int n = a.rows();
  DenseMatrix p(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      p(i, j) = (i == j ? 1.0 : 0.0) - 1.0 / static_cast<double>(n);
  return p.multiply(a).multiply(p);
}

TEST(BlockCholesky, ChainStructureInvariants) {
  // Thm 3.9: every level has at most m multi-edges (1), F_k is 5-DD (2,
  // enforced by construction), the base is small (3), d = O(log n) (4).
  const Multigraph g = make_grid2d(25, 25);
  const Multigraph split = split_edges_uniform(g, 8);
  const BlockCholeskyChain chain = BlockCholeskyChain::build(split, 5);

  EXPECT_LE(chain.base_size(), 100);
  EXPECT_GE(chain.depth(), 1);
  const EdgeId m0 = split.num_edges();
  Vertex prev_n = split.num_vertices() + 1;
  for (const LevelStats& ls : chain.level_stats()) {
    EXPECT_LE(ls.multi_edges, m0);          // Thm 3.9-(1)
    EXPECT_LT(ls.n, prev_n);                // strictly shrinking
    EXPECT_GE(ls.f_size, ls.n / 40);        // Lemma 3.4 acceptance
    EXPECT_EQ(ls.walks.retries, 0);
    prev_n = ls.n;
  }
  // d = O(log n): the paper's bound is log_{40/39}; with 1/20 sampling the
  // practical bound is ~20 ln(n/100). Assert a generous multiple.
  const double bound = 25.0 * std::log(static_cast<double>(g.num_vertices()));
  EXPECT_LE(chain.depth(), static_cast<int>(bound));
}

TEST(BlockCholesky, TinyGraphSkipsElimination) {
  const Multigraph g = make_path(50);
  const BlockCholeskyChain chain = BlockCholeskyChain::build(g, 1);
  EXPECT_EQ(chain.depth(), 0);
  EXPECT_EQ(chain.base_size(), 50);
  // Apply == dense pinv.
  const Vector b = random_vector(50, 1);
  Vector got(50);
  chain.apply(b, got);
  const DenseMatrix pinv = pseudo_inverse(laplacian_dense(g));
  const Vector want = pinv.apply(b);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_NEAR(got[i], want[i], 1e-9);
}

TEST(BlockCholesky, ApplyIsLinear) {
  const Multigraph g = make_erdos_renyi(300, 1200, 3);
  const Multigraph split = split_edges_uniform(g, 6);
  const BlockCholeskyChain chain = BlockCholeskyChain::build(split, 7);
  ApplyWorkspace ws;
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const Vector x = random_vector(n, 2);
  const Vector y = random_vector(n, 3);
  Vector combo(n);
  for (std::size_t i = 0; i < n; ++i) combo[i] = 2.0 * x[i] - 0.5 * y[i];
  Vector wx(n), wy(n), wcombo(n);
  chain.apply(x, wx, ws);
  chain.apply(y, wy, ws);
  chain.apply(combo, wcombo, ws);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(wcombo[i], 2.0 * wx[i] - 0.5 * wy[i], 1e-9);
  }
}

TEST(BlockCholesky, ApplyIsSymmetric) {
  const Multigraph g = make_grid2d(15, 15);
  const Multigraph split = split_edges_uniform(g, 6);
  const BlockCholeskyChain chain = BlockCholeskyChain::build(split, 9);
  ApplyWorkspace ws;
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const Vector x = random_vector(n, 4);
  const Vector y = random_vector(n, 5);
  Vector wx(n), wy(n);
  chain.apply(x, wx, ws);
  chain.apply(y, wy, ws);
  // <Wx, y> == <x, Wy>
  EXPECT_NEAR(dot(wx, y), dot(x, wy), 1e-7 * norm2(x) * norm2(y));
}

TEST(BlockCholesky, ApplyIsPsd) {
  const Multigraph g = make_random_regular(200, 4, 6);
  const Multigraph split = split_edges_uniform(g, 6);
  const BlockCholeskyChain chain = BlockCholeskyChain::build(split, 11);
  ApplyWorkspace ws;
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  for (std::uint64_t s = 0; s < 5; ++s) {
    const Vector x = random_vector(n, 100 + s);
    Vector wx(n);
    chain.apply(x, wx, ws);
    EXPECT_GE(dot(x, wx), -1e-9);
  }
}

TEST(BlockCholesky, OperatorApproximatesPinvWithinE1) {
  // Thm 3.10: W^+ ~1 L, i.e. the spectrum of W against L^+ (off the
  // kernel) lies within [e^-1, e^1]. Use a generous split factor so the
  // w.h.p. bound holds comfortably at this size.
  Multigraph g = make_erdos_renyi(150, 600, 7);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 8);
  const Multigraph split = split_edges_uniform(g, 40);
  const BlockCholeskyChain chain = BlockCholeskyChain::build(split, 13);

  DenseMatrix w = materialize(chain);
  w.symmetrize();
  const DenseMatrix w_proj = project_ones(w);
  const DenseMatrix pinv = project_ones(pseudo_inverse(laplacian_dense(g)));
  const SpectralBounds sb = relative_spectral_bounds(w_proj, pinv, 1e-7);
  EXPECT_GT(sb.lo, std::exp(-1.0));
  EXPECT_LT(sb.hi, std::exp(1.0));
}

TEST(BlockCholesky, DeterministicAcrossRuns) {
  const Multigraph g = make_grid2d(20, 20);
  const Multigraph split = split_edges_uniform(g, 4);
  const BlockCholeskyChain a = BlockCholeskyChain::build(split, 17);
  const BlockCholeskyChain b = BlockCholeskyChain::build(split, 17);
  EXPECT_EQ(a.depth(), b.depth());
  const Vector x = random_vector(400, 6);
  Vector ya(400), yb(400);
  a.apply(x, ya);
  b.apply(x, yb);
  for (std::size_t i = 0; i < 400; ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(BlockCholesky, JacobiTermsAreOddAndLogInDepth) {
  const Multigraph g = make_grid2d(25, 25);
  const Multigraph split = split_edges_uniform(g, 4);
  const BlockCholeskyChain chain = BlockCholeskyChain::build(split, 19);
  EXPECT_EQ(chain.jacobi_terms() % 2, 1);
  // l = ceil(log2(6 d)) (+1 if even) stays small.
  EXPECT_LE(chain.jacobi_terms(), 2 + static_cast<int>(std::ceil(
                                          std::log2(6.0 * chain.depth()))));
}

TEST(BlockCholesky, StoredEntriesAreWellBelowNaiveChain) {
  // Memory claim: only F-incident edges are retained, so stored entries
  // are a small multiple of m, not m * depth.
  const Multigraph g = make_grid2d(30, 30);
  const Multigraph split = split_edges_uniform(g, 4);
  const BlockCholeskyChain chain = BlockCholeskyChain::build(split, 23);
  const EdgeId naive =
      2 * split.num_edges() * static_cast<EdgeId>(chain.depth());
  EXPECT_LT(chain.stored_entries(), naive / 4);
}

}  // namespace
}  // namespace parlap
