// TerminalWalks tests (Lemmas 5.1, 5.2, 5.4): unbiasedness against the
// exact dense Schur complement, alpha-boundedness preservation, the
// never-more-edges invariant, weight composition, and determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/alpha_bound.hpp"
#include "core/five_dd.hpp"
#include "core/terminal_walks.hpp"
#include "graph/generators.hpp"
#include "linalg/dense.hpp"

namespace parlap {
namespace {

struct Partition {
  std::vector<Vertex> f_index;
  std::vector<Vertex> c_index;
  std::vector<Vertex> c_list;
  Vertex nf = 0;
  Vertex nc = 0;
};

Partition make_partition(const Multigraph& g, std::span<const Vertex> f) {
  Partition p;
  const Vertex n = g.num_vertices();
  p.f_index.assign(static_cast<std::size_t>(n), kInvalidVertex);
  p.c_index.assign(static_cast<std::size_t>(n), kInvalidVertex);
  for (std::size_t i = 0; i < f.size(); ++i) {
    p.f_index[static_cast<std::size_t>(f[i])] = static_cast<Vertex>(i);
  }
  for (Vertex v = 0; v < n; ++v) {
    if (p.f_index[static_cast<std::size_t>(v)] == kInvalidVertex) {
      p.c_index[static_cast<std::size_t>(v)] = static_cast<Vertex>(p.c_list.size());
      p.c_list.push_back(v);
    }
  }
  p.nf = static_cast<Vertex>(f.size());
  p.nc = static_cast<Vertex>(p.c_list.size());
  return p;
}

Multigraph run_walks(const Multigraph& g, const Partition& p,
                     std::uint64_t seed, WalkStats* stats = nullptr) {
  const WalkGraph wg = build_walk_graph(g, p.f_index, p.nf);
  return terminal_walks(g, wg, p.f_index, p.c_index, p.nc, seed, 0, stats);
}

TEST(WalkGraph, RowsContainAllIncidentEdges) {
  const Multigraph g = make_grid2d(5, 5);
  const std::vector<Vertex> f{0, 6, 12, 18, 24};
  const Partition p = make_partition(g, f);
  const WalkGraph wg = build_walk_graph(g, p.f_index, p.nf);
  EXPECT_EQ(wg.rows(), 5);
  const auto deg = g.weighted_degrees();
  for (std::size_t i = 0; i < f.size(); ++i) {
    double row_w = 0.0;
    for (EdgeId q = wg.off[i]; q < wg.off[i + 1]; ++q) {
      row_w += wg.w[static_cast<std::size_t>(q)];
    }
    EXPECT_NEAR(row_w, deg[static_cast<std::size_t>(f[i])], 1e-12);
  }
}

TEST(TerminalWalks, AllTerminalsIsIdentity) {
  // F empty: every walk is trivial and H == G exactly.
  Multigraph g = make_erdos_renyi(30, 90, 1);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 2);
  const Partition p = make_partition(g, {});
  WalkStats stats;
  const Multigraph h = run_walks(g, p, 3, &stats);
  ASSERT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(stats.total_steps, 0);
  EXPECT_LT(laplacian_dense(h).max_abs_diff(laplacian_dense(g)), 1e-12);
}

TEST(TerminalWalks, NeverMoreEdges) {
  // Lemma 5.4 invariant across several families and seeds.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Multigraph g = make_erdos_renyi(200, 900, seed);
    const Multigraph split = split_edges_uniform(g, 3);
    const FiveDdResult fdd =
        five_dd_subset(split, split.weighted_degrees(), seed);
    const Partition p = make_partition(split, fdd.f);
    WalkStats stats;
    const Multigraph h = run_walks(split, p, seed, &stats);
    EXPECT_LE(h.num_edges(), split.num_edges());
    EXPECT_EQ(stats.edges_out + stats.dropped_loops, stats.edges_in);
  }
}

TEST(TerminalWalks, Deterministic) {
  const Multigraph g = make_grid2d(12, 12);
  const FiveDdResult fdd = five_dd_subset(g, g.weighted_degrees(), 5);
  const Partition p = make_partition(g, fdd.f);
  const Multigraph a = run_walks(g, p, 11);
  const Multigraph b = run_walks(g, p, 11);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_u(e), b.edge_u(e));
    EXPECT_EQ(a.edge_v(e), b.edge_v(e));
    EXPECT_DOUBLE_EQ(a.edge_weight(e), b.edge_weight(e));
  }
}

TEST(TerminalWalks, UnbiasedEstimatorOfSchurComplement) {
  // Lemma 5.1: E[L_H] = SC(L_G, C). Average many independent samples on a
  // small graph and compare entrywise with a CLT-scaled tolerance.
  Multigraph g = make_erdos_renyi(12, 40, 3);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 4);
  const Multigraph split = split_edges_uniform(g, 4);
  // Eliminate an independent set (trivially 5-DD).
  const std::vector<Vertex> f{0, 5, 9};
  const Partition p = make_partition(split, f);

  const int trials = 3000;
  DenseMatrix mean(p.nc, p.nc);
  for (int t = 0; t < trials; ++t) {
    const Multigraph h = run_walks(split, p, 1000 + static_cast<std::uint64_t>(t));
    const DenseMatrix lh = laplacian_dense(h);
    for (int i = 0; i < p.nc; ++i)
      for (int j = 0; j < p.nc; ++j) mean(i, j) += lh(i, j) / trials;
  }

  std::vector<Vertex> keep = p.c_list;
  const DenseMatrix sc = schur_complement_dense(laplacian_dense(g), keep);
  EXPECT_LT(mean.max_abs_diff(sc), 0.15);  // ~4 sigma at these weights
}

TEST(TerminalWalks, OutputEdgesAreAlphaBounded) {
  // Lemma 5.2: if every input multi-edge is alpha-bounded w.r.t. L, every
  // emitted edge is too (effective resistance triangle inequality).
  Multigraph g = make_erdos_renyi(20, 60, 7);
  apply_weights(g, WeightModel::uniform(0.2, 3.0), 8);
  const std::int64_t copies = 6;
  const Multigraph split = split_edges_uniform(g, copies);
  const double alpha = 1.0 / static_cast<double>(copies);

  const FiveDdResult fdd = five_dd_subset(split, split.weighted_degrees(), 9);
  const Partition p = make_partition(split, fdd.f);
  const Multigraph h = run_walks(split, p, 13);

  // Resistances w.r.t. the ORIGINAL L, between the C vertices of h.
  const DenseMatrix pinv = pseudo_inverse(laplacian_dense(g));
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const Vertex cu = p.c_list[static_cast<std::size_t>(h.edge_u(e))];
    const Vertex cv = p.c_list[static_cast<std::size_t>(h.edge_v(e))];
    const double resistance =
        pinv(cu, cu) + pinv(cv, cv) - 2.0 * pinv(cu, cv);
    EXPECT_LE(h.edge_weight(e) * resistance, alpha + 1e-9);
  }
}

TEST(TerminalWalks, PathEliminationComposesHarmonically) {
  // Path 0-1-2, weights w01=2, w12=3, eliminate {1}: any sampled edge must
  // be the full path with weight 1/(1/2+1/3) = 6/5.
  Multigraph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const std::vector<Vertex> f{1};
  const Partition p = make_partition(g, f);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Multigraph h = run_walks(g, p, seed);
    for (EdgeId e = 0; e < h.num_edges(); ++e) {
      EXPECT_NEAR(h.edge_weight(e), 1.2, 1e-12);
    }
  }
}

TEST(TerminalWalks, WalkLengthsShortOnFiveDdSets) {
  // Lemma 5.4: escape probability >= 4/5 per step => mean length <= 1/4
  // per walk endpoint... empirically small; max O(log m).
  const Multigraph g = make_grid2d(40, 40);
  const FiveDdResult fdd = five_dd_subset(g, g.weighted_degrees(), 21);
  const Partition p = make_partition(g, fdd.f);
  WalkStats stats;
  (void)run_walks(g, p, 23, &stats);
  const double mean_steps =
      static_cast<double>(stats.total_steps) /
      (2.0 * static_cast<double>(stats.edges_in));
  EXPECT_LT(mean_steps, 1.0);
  EXPECT_LE(stats.max_walk_len, 64);
  EXPECT_EQ(stats.retries, 0);
}

TEST(TerminalWalks, IsolatedCVertexSurvives) {
  // A C vertex with no edges shouldn't break anything.
  Multigraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  // Vertex 3 isolated; F = {1}.
  const std::vector<Vertex> f{1};
  const Partition p = make_partition(g, f);
  const Multigraph h = run_walks(g, p, 1);
  EXPECT_EQ(h.num_vertices(), 3);
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    EXPECT_NE(h.edge_u(e), p.c_index[3]);
    EXPECT_NE(h.edge_v(e), p.c_index[3]);
  }
}

}  // namespace
}  // namespace parlap
