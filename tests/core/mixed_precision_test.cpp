// Mixed-precision solve contract (docs/PERFORMANCE.md "Precision
// modes"): fp32 storage is an implementation detail the accuracy
// contract must not leak — every fp32 solve meets the requested eps via
// fp64 iterative refinement (including eps far below float machine
// epsilon), stays bit-deterministic across thread counts and block
// widths WITHIN the fp32 mode, and halves the factorization's value
// bytes. The fp64 path must be byte-for-byte unaffected by the new
// precision knob, and kAuto must resolve deterministically by problem
// size. What fp32 never promises is bitwise parity with fp64.
#include <gtest/gtest.h>

#include <cmath>

#include <omp.h>

#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "support/precision.hpp"
#include "support/rng.hpp"

namespace parlap {
namespace {

Vector random_rhs(Vertex n, std::uint64_t seed) {
  Vector b(static_cast<std::size_t>(n));
  Rng rng(seed, RngTag::kTest, 1);
  for (auto& v : b) v = rng.next_in(-1.0, 1.0);
  project_out_ones(b);
  return b;
}

SolverOptions with_precision(Precision p) {
  SolverOptions opts;
  opts.precision = p;
  return opts;
}

struct Case {
  int family;
  double eps;
};

class Fp32AccuracyTest : public ::testing::TestWithParam<Case> {
 protected:
  Multigraph graph() const {
    switch (GetParam().family) {
      case 0:
        return make_grid2d(14, 14);
      case 1: {
        Multigraph g = make_erdos_renyi(250, 1200, 3);
        apply_weights(g, WeightModel::power_law(0.01, 100.0, 2.5), 4);
        return g;
      }
      case 2:
        return make_barbell(50, 30);
      default:
        return make_binary_tree(255);
    }
  }
};

TEST_P(Fp32AccuracyTest, MeetsRequestedEps) {
  const Multigraph g = graph();
  const LaplacianSolver solver(g, with_precision(Precision::kFp32));
  EXPECT_EQ(solver.info().precision, Precision::kFp32);
  const Vector b = random_rhs(g.num_vertices(), 21);
  Vector x(b.size(), 0.0);
  const double eps = GetParam().eps;
  const SolveStats st = solver.solve(b, x, eps);
  EXPECT_TRUE(st.converged) << "fp32 solve failed eps=" << eps;
  EXPECT_LE(st.relative_residual, eps);
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  static constexpr const char* kNames[] = {"Grid", "PowerLawGnm", "Barbell",
                                           "Tree"};
  return std::string(kNames[info.param.family]) + "_eps1e" +
         std::to_string(static_cast<int>(-std::log10(info.param.eps) + 0.5));
}

// eps = 1e-12 sits ~5 decimal digits below fp32 machine epsilon: only
// the fp64 refinement loop can get there. This is the headline claim of
// the precision contract — storage precision does not cap achievable
// accuracy, it only changes how many outer iterations (or, worst case,
// which escalation rung) it takes.
INSTANTIATE_TEST_SUITE_P(
    FamiliesAndEps, Fp32AccuracyTest,
    ::testing::Values(Case{0, 1e-6}, Case{0, 1e-12}, Case{1, 1e-8},
                      Case{2, 1e-10}, Case{3, 1e-12}),
    case_name);

TEST(MixedPrecision, Fp64PathIgnoresKnobBitwise) {
  // precision = kFp64 (the default) must be indistinguishable — to the
  // bit — from a solver built before the knob existed. Default-built
  // options vs explicitly-set kFp64 exercise both spellings.
  const Multigraph g = make_grid2d(18, 18);
  const Vector b = random_rhs(g.num_vertices(), 31);
  const LaplacianSolver def(g);
  const LaplacianSolver expl(g, with_precision(Precision::kFp64));
  EXPECT_EQ(def.info().precision, Precision::kFp64);
  EXPECT_EQ(expl.info().precision, Precision::kFp64);
  Vector xd(b.size(), 0.0);
  Vector xe(b.size(), 0.0);
  (void)def.solve(b, xd, 1e-9);
  (void)expl.solve(b, xe, 1e-9);
  for (std::size_t i = 0; i < b.size(); ++i) {
    ASSERT_EQ(xd[i], xe[i]) << "index " << i;
  }
}

TEST(MixedPrecision, Fp32HalvesStoredValueBytes) {
  // Same graph, same options: the chain structure (and so the value
  // count) is a pure function of (graph, seed, split) — precision only
  // narrows the arrays. fp32 must report exactly half the value bytes
  // and identical stored_entries.
  Multigraph g = make_erdos_renyi(300, 1500, 9);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 10);
  const LaplacianSolver f64(g, with_precision(Precision::kFp64));
  const LaplacianSolver f32(g, with_precision(Precision::kFp32));
  EXPECT_EQ(f64.info().stored_entries, f32.info().stored_entries);
  EXPECT_GT(f32.info().stored_value_bytes, 0u);
  EXPECT_EQ(f64.info().stored_value_bytes, 2 * f32.info().stored_value_bytes);
}

TEST(MixedPrecision, AutoResolvesByProblemSize) {
  EXPECT_EQ(resolve_precision(Precision::kFp64, 10), Precision::kFp64);
  EXPECT_EQ(resolve_precision(Precision::kFp32, 10), Precision::kFp32);
  EXPECT_EQ(resolve_precision(Precision::kAuto, kAutoFp32MinVertices - 1),
            Precision::kFp64);
  EXPECT_EQ(resolve_precision(Precision::kAuto, kAutoFp32MinVertices),
            Precision::kFp32);

  // The constructor resolves kAuto against the graph: info() never
  // reports kAuto.
  const Multigraph small = make_grid2d(10, 10);  // 100 < 2048
  const LaplacianSolver s(small, with_precision(Precision::kAuto));
  EXPECT_EQ(s.info().precision, Precision::kFp64);

  const Multigraph big = make_grid2d(46, 46);  // 2116 >= 2048
  const LaplacianSolver blarge(big, with_precision(Precision::kAuto));
  EXPECT_EQ(blarge.info().precision, Precision::kFp32);
}

TEST(MixedPrecision, Fp32PanelBitIdenticalToScalarColumns) {
  // The blocked-solve determinism contract holds per storage mode:
  // solve_many at any width must reproduce sequential fp32 solves to
  // the bit (fp32 kernels share the "lane = column" discipline).
  const Multigraph g = make_grid2d(16, 16);
  SolverOptions opts = with_precision(Precision::kFp32);
  opts.max_block_width = 8;
  const LaplacianSolver solver(g, opts);
  constexpr std::size_t kRhs = 5;
  std::vector<Vector> bs;
  for (std::size_t i = 0; i < kRhs; ++i) {
    bs.push_back(random_rhs(g.num_vertices(), 40 + i));
  }
  std::vector<Vector> xs(kRhs, Vector(bs[0].size(), 0.0));
  const auto stats = solver.solve_many(bs, xs, 1e-8);
  ASSERT_EQ(stats.size(), kRhs);
  for (std::size_t i = 0; i < kRhs; ++i) {
    EXPECT_TRUE(stats[i].converged);
    Vector x_seq(bs[i].size(), 0.0);
    (void)solver.solve(bs[i], x_seq, 1e-8);
    for (std::size_t j = 0; j < x_seq.size(); ++j) {
      ASSERT_EQ(xs[i][j], x_seq[j]) << "rhs " << i << " index " << j;
    }
  }
}

TEST(MixedPrecision, Fp32DeterministicAcrossThreadCounts) {
  const Multigraph g = make_grid2d(20, 20);
  const Vector b = random_rhs(g.num_vertices(), 53);
  Vector x_multi(b.size(), 0.0);
  Vector x_single(b.size(), 0.0);

  const int saved = omp_get_max_threads();
  {
    const LaplacianSolver solver(g, with_precision(Precision::kFp32));
    (void)solver.solve(b, x_multi, 1e-8);
  }
  omp_set_num_threads(1);
  {
    const LaplacianSolver solver(g, with_precision(Precision::kFp32));
    (void)solver.solve(b, x_single, 1e-8);
  }
  omp_set_num_threads(saved);
  for (std::size_t i = 0; i < b.size(); ++i) {
    ASSERT_EQ(x_multi[i], x_single[i]) << "index " << i;
  }
}

TEST(MixedPrecision, Fp32SurvivesHostileWeightsViaEscalation) {
  // Nine decades of weight spread pushes the float dynamic range hard;
  // whether refinement powers through or the solve climbs the fp64
  // escalation rung, the eps contract must hold either way. adaptive is
  // OFF: the precision-escape rung (round 1 = fp64 rebuild of the same
  // parameters) exists independently of the doubled-copies ladder.
  Multigraph g = make_erdos_renyi(200, 900, 61);
  apply_weights(g, WeightModel::power_law(1e-5, 1e4, 2.0), 62);
  SolverOptions opts = with_precision(Precision::kFp32);
  opts.adaptive = false;
  const LaplacianSolver solver(g, opts);
  const Vector b = random_rhs(g.num_vertices(), 63);
  Vector x(b.size(), 0.0);
  const SolveStats st = solver.solve(b, x, 1e-10);
  EXPECT_TRUE(st.converged);
  EXPECT_LE(st.relative_residual, 1e-10);
  EXPECT_GE(st.rebuilds, 0);
  EXPECT_LE(st.rebuilds, 1);  // only the precision rung exists here
}

TEST(MixedPrecision, Fp32BenignGraphNeedsNoEscalation) {
  const Multigraph g = make_grid2d(14, 14);
  const LaplacianSolver solver(g, with_precision(Precision::kFp32));
  const Vector b = random_rhs(g.num_vertices(), 71);
  Vector x(b.size(), 0.0);
  const SolveStats st = solver.solve(b, x, 1e-8);
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.rebuilds, 0);
}

}  // namespace
}  // namespace parlap
