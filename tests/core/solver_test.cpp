// Top-level LaplacianSolver API tests: accuracy across graph families and
// eps values (parameterized), determinism under varying thread counts,
// both splitting strategies, adaptive rebuilds, and input validation.
#include <gtest/gtest.h>

#include <cmath>

#include <omp.h>

#include "baselines/dense_direct.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "linalg/laplacian_op.hpp"
#include "support/rng.hpp"

namespace parlap {
namespace {

Vector random_rhs(Vertex n, std::uint64_t seed) {
  Vector b(static_cast<std::size_t>(n));
  Rng rng(seed, RngTag::kTest, 1);
  for (auto& v : b) v = rng.next_in(-1.0, 1.0);
  project_out_ones(b);
  return b;
}

double l_norm_error(const Multigraph& g, std::span<const double> x,
                    std::span<const double> b) {
  const DenseDirectSolver oracle(g);
  Vector x_star(x.size());
  oracle.solve(b, x_star);
  const LaplacianOperator op(g);
  Vector diff(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) diff[i] = x[i] - x_star[i];
  const double ref = op.laplacian_norm(x_star);
  return ref > 0.0 ? op.laplacian_norm(diff) / ref : op.laplacian_norm(diff);
}

struct Case {
  int family;
  double eps;
};

class SolverAccuracyTest : public ::testing::TestWithParam<Case> {
 protected:
  Multigraph graph() const {
    switch (GetParam().family) {
      case 0:
        return make_grid2d(14, 14);
      case 1: {
        Multigraph g = make_erdos_renyi(250, 1200, 3);
        apply_weights(g, WeightModel::power_law(0.01, 100.0, 2.5), 4);
        return g;
      }
      case 2:
        return make_binary_tree(255);
      case 3:
        return make_barbell(50, 30);
      default: {
        Multigraph g = make_rmat(8, 1200, 5);
        apply_weights(g, WeightModel::uniform(0.5, 2.0), 6);
        return g;
      }
    }
  }
};

TEST_P(SolverAccuracyTest, SolvesToRequestedAccuracy) {
  const Multigraph g = graph();
  LaplacianSolver solver(g);
  const Vector b = random_rhs(g.num_vertices(), 11);
  Vector x(b.size(), 0.0);
  const double eps = GetParam().eps;
  const SolveStats st = solver.solve(b, x, eps);
  EXPECT_TRUE(st.converged);
  EXPECT_LE(st.relative_residual, eps);
  // The residual criterion at eps implies small (not necessarily eps)
  // L-norm error; assert a conservative multiple via the dense oracle.
  EXPECT_LE(l_norm_error(g, x, b), std::sqrt(eps));
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  static constexpr const char* kNames[] = {"Grid", "PowerLawGnm", "Tree",
                                           "Barbell", "Rmat"};
  return std::string(kNames[info.param.family]) + "_eps1e" +
         std::to_string(static_cast<int>(-std::log10(info.param.eps) + 0.5));
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndEps, SolverAccuracyTest,
    ::testing::Values(Case{0, 1e-4}, Case{0, 1e-8}, Case{1, 1e-6},
                      Case{2, 1e-8}, Case{3, 1e-6}, Case{4, 1e-6},
                      Case{1, 1e-10}, Case{3, 1e-10}),
    case_name);

TEST(Solver, DeterministicAcrossThreadCounts) {
  const Multigraph g = make_grid2d(20, 20);
  const Vector b = random_rhs(g.num_vertices(), 13);
  Vector x_multi(b.size(), 0.0);
  Vector x_single(b.size(), 0.0);

  const int saved = omp_get_max_threads();
  {
    LaplacianSolver solver(g);
    solver.solve(b, x_multi, 1e-8);
  }
  omp_set_num_threads(1);
  {
    LaplacianSolver solver(g);
    solver.solve(b, x_single, 1e-8);
  }
  omp_set_num_threads(saved);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(x_multi[i], x_single[i]) << "index " << i;
  }
}

TEST(Solver, LeverageStrategySolves) {
  Multigraph g = make_erdos_renyi(300, 4000, 17);  // fairly dense
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 18);
  SolverOptions opts;
  opts.split = SplitStrategy::kLeverage;
  LaplacianSolver solver(g, opts);
  const Vector b = random_rhs(g.num_vertices(), 19);
  Vector x(b.size(), 0.0);
  const SolveStats st = solver.solve(b, x, 1e-8);
  EXPECT_TRUE(st.converged);
  EXPECT_LE(l_norm_error(g, x, b), 1e-4);
}

TEST(Solver, LeverageSplitsFewerEdgesOnDenseGraphs) {
  // Theorem 1.2's point: on dense graphs most edges have tiny leverage
  // and need no splitting.
  const Multigraph g = make_erdos_renyi(200, 6000, 21);
  SolverOptions uniform_opts;
  SolverOptions leverage_opts;
  leverage_opts.split = SplitStrategy::kLeverage;
  LaplacianSolver u(g, uniform_opts);
  LaplacianSolver l(g, leverage_opts);
  EXPECT_LT(l.info().split_edges, u.info().split_edges / 2);
}

TEST(Solver, AdaptiveRebuildRecoversFromWeakSplit) {
  // Deliberately cripple the preconditioner, cap Richardson, and require
  // the adaptive path to refactor.
  // With delta = 1 the Richardson step size is alpha ~ 0.648, so even an
  // exact preconditioner contracts the residual by only 0.35 per
  // iteration: 1e-6 needs >= 14 iterations. A 16-iteration cap therefore
  // fails for the crippled 1-copy factorization but passes once the
  // rebuilds double the copies enough.
  const Multigraph g = make_barbell(60, 20);
  SolverOptions opts;
  opts.split_scale = 1e-9;  // 1 copy: weakest possible concentration
  opts.richardson.max_iterations = 16;
  opts.adaptive = true;
  opts.max_rebuilds = 6;
  LaplacianSolver solver(g, opts);
  const Vector b = random_rhs(g.num_vertices(), 23);
  Vector x(b.size(), 0.0);
  const SolveStats st = solver.solve(b, x, 1e-6);
  EXPECT_TRUE(st.converged);
  EXPECT_GE(st.rebuilds, 1);
}

TEST(Solver, NonAdaptiveReportsFailureHonestly) {
  const Multigraph g = make_barbell(60, 20);
  SolverOptions opts;
  opts.split_scale = 1e-9;
  opts.richardson.max_iterations = 2;
  opts.adaptive = false;
  LaplacianSolver solver(g, opts);
  const Vector b = random_rhs(g.num_vertices(), 29);
  Vector x(b.size(), 0.0);
  const SolveStats st = solver.solve(b, x, 1e-10);
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.rebuilds, 0);
  EXPECT_GT(st.relative_residual, 1e-10);
}

TEST(Solver, InfoFieldsPopulated) {
  const Multigraph g = make_grid2d(15, 15);
  LaplacianSolver solver(g);
  const FactorizationInfo& info = solver.info();
  EXPECT_EQ(info.n, 225);
  EXPECT_EQ(info.m, g.num_edges());
  EXPECT_EQ(info.components, 1);
  EXPECT_GT(info.copies, 1);
  EXPECT_EQ(info.split_edges, info.copies * g.num_edges());
  EXPECT_GT(info.depth, 0);
  EXPECT_GT(info.jacobi_terms, 0);
  EXPECT_GT(info.stored_entries, 0);
}

TEST(Solver, RhsWithKernelComponentIsProjected) {
  // b with a constant offset: solution must satisfy L x = P b.
  const Multigraph g = make_cycle(64);
  LaplacianSolver solver(g);
  Vector b = random_rhs(64, 31);
  for (auto& v : b) v += 3.0;  // kernel pollution
  Vector x(64, 0.0);
  const SolveStats st = solver.solve(b, x, 1e-8);
  EXPECT_TRUE(st.converged);
  Vector lx(64);
  solver.apply_laplacian(x, lx);
  Vector b_proj = b;
  project_out_ones(b_proj);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(lx[i], b_proj[i], 1e-6);
}

TEST(Solver, SolutionIsMeanFree) {
  const Multigraph g = make_grid2d(9, 9);
  LaplacianSolver solver(g);
  const Vector b = random_rhs(81, 37);
  Vector x(81, 0.0);
  solver.solve(b, x, 1e-8);
  EXPECT_NEAR(sum(x), 0.0, 1e-9);
}

TEST(Solver, SingleVertexComponent) {
  Multigraph g(3);
  g.add_edge(0, 1, 1.0);  // vertex 2 isolated
  LaplacianSolver solver(g);
  EXPECT_EQ(solver.info().components, 2);
  Vector b{1.0, -1.0, 5.0};  // component {2} gets a pure-kernel rhs
  Vector x(3, 0.0);
  const SolveStats st = solver.solve(b, x, 1e-6);
  EXPECT_TRUE(st.converged);
  EXPECT_NEAR(x[0] - x[1], 1.0, 1e-5);  // L x = (1,-1) on the edge
  EXPECT_EQ(x[2], 0.0);
}

TEST(Solver, SolveManyMatchesIndividualSolves) {
  const Multigraph g = make_grid2d(10, 10);
  LaplacianSolver solver(g);
  std::vector<Vector> bs;
  for (std::uint64_t s = 0; s < 3; ++s) bs.push_back(random_rhs(100, 50 + s));
  std::vector<Vector> xs(3, Vector(100, 0.0));
  const std::vector<SolveStats> stats = solver.solve_many(bs, xs, 1e-9);
  ASSERT_EQ(stats.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(stats[i].converged);
    Vector x(100, 0.0);
    solver.solve(bs[i], x, 1e-9);
    for (std::size_t j = 0; j < 100; ++j) EXPECT_EQ(xs[i][j], x[j]);
  }
}

TEST(Solver, RejectsInvalidInput) {
  Multigraph g(2);
  g.resize_edges(1);  // zero-filled edge slot: weight 0
  EXPECT_THROW(LaplacianSolver s(g), std::runtime_error);
}

TEST(Solver, WrongSizeRhsThrows) {
  const Multigraph g = make_path(5);
  LaplacianSolver solver(g);
  Vector b(4, 0.0);
  Vector x(5, 0.0);
  EXPECT_THROW((void)solver.solve(b, x, 0.5), std::runtime_error);
}

TEST(Solver, PreconditionerDrivesPcg) {
  // apply_preconditioner() must be a usable PSD preconditioner on its own.
  const Multigraph g = make_grid2d(12, 12);
  LaplacianSolver solver(g);
  const Vector b = random_rhs(144, 41);
  Vector y(144, 0.0);
  solver.apply_preconditioner(b, y);
  // PSD-ness proxy: <b, Wb> > 0 and symmetric via random probes.
  EXPECT_GT(dot(b, y), 0.0);
  const Vector b2 = random_rhs(144, 43);
  Vector y2(144, 0.0);
  solver.apply_preconditioner(b2, y2);
  EXPECT_NEAR(dot(y, b2), dot(b, y2), 1e-8 * norm2(b) * norm2(b2));
}

}  // namespace
}  // namespace parlap
