// ResistanceEstimator tests: JL sketch accuracy against exact effective
// resistances, leverage-score queries, and determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "core/resistance.hpp"
#include "graph/generators.hpp"
#include "linalg/dense.hpp"

namespace parlap {
namespace {

TEST(Resistance, PathIsSumOfInverseWeights) {
  // Series circuit: R(0, k) = sum 1/w exactly.
  Multigraph g = make_path(20);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 1);
  ResistanceOptions opts;
  opts.jl_dimensions = 400;  // tight sketch for a precise check
  opts.solve_eps = 1e-8;
  const ResistanceEstimator est(g, 2, opts);
  double expected = 0.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    expected += 1.0 / g.edge_weight(e);
  }
  EXPECT_NEAR(est.resistance(0, 19), expected, 0.15 * expected);
}

TEST(Resistance, MatchesDensePinvWithinJlError) {
  // JL noise is ~sqrt(2/q) per pair but shared across pairs (one sketch),
  // so the tolerance must cover a correlated multi-sigma excursion.
  Multigraph g = make_erdos_renyi(60, 240, 3);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 4);
  ResistanceOptions opts;
  opts.jl_dimensions = 1200;
  opts.solve_eps = 1e-8;
  const ResistanceEstimator est(g, 5, opts);
  const DenseMatrix pinv = pseudo_inverse(laplacian_dense(g));
  for (Vertex u = 0; u < 10; ++u) {
    for (Vertex v = u + 1; v < 10; ++v) {
      const double exact = pinv(u, u) + pinv(v, v) - 2.0 * pinv(u, v);
      EXPECT_NEAR(est.resistance(u, v), exact, 0.25 * exact + 1e-9);
    }
  }
}

TEST(Resistance, LeverageScoresMatchDense) {
  Multigraph g = make_erdos_renyi(50, 200, 7);
  ResistanceOptions opts;
  opts.jl_dimensions = 600;
  opts.solve_eps = 1e-8;
  const ResistanceEstimator est(g, 8, opts);
  const Vector approx = est.leverage_scores(g);
  const Vector exact = leverage_scores_dense(g);
  for (std::size_t e = 0; e < exact.size(); ++e) {
    EXPECT_NEAR(approx[e], exact[e], 0.25 * exact[e] + 1e-6);
  }
}

TEST(Resistance, SymmetricAndZeroOnSelf) {
  const Multigraph g = make_grid2d(6, 6);
  const ResistanceEstimator est(g, 9);
  EXPECT_DOUBLE_EQ(est.resistance(3, 3), 0.0);
  EXPECT_DOUBLE_EQ(est.resistance(2, 7), est.resistance(7, 2));
}

TEST(Resistance, TriangleInequality) {
  // Lemma 5.3: effective resistance is a metric; the sketch preserves it
  // approximately, so allow 20% slack.
  const Multigraph g = make_grid2d(8, 8);
  ResistanceOptions opts;
  opts.jl_dimensions = 300;
  const ResistanceEstimator est(g, 11, opts);
  for (const auto& [a, b, c] :
       {std::tuple<Vertex, Vertex, Vertex>{0, 30, 63}, {5, 20, 50}}) {
    EXPECT_LE(est.resistance(a, c),
              1.2 * (est.resistance(a, b) + est.resistance(b, c)));
  }
}

TEST(Resistance, Deterministic) {
  const Multigraph g = make_cycle(40);
  const ResistanceEstimator a(g, 13);
  const ResistanceEstimator b(g, 13);
  EXPECT_EQ(a.resistance(0, 20), b.resistance(0, 20));
}

TEST(Resistance, AutoDimensionsScaleWithLogN) {
  const Multigraph g = make_cycle(1000);
  const ResistanceEstimator est(g, 15);
  EXPECT_GE(est.dimensions(), static_cast<int>(6.0 * std::log(1000.0)));
}

}  // namespace
}  // namespace parlap
