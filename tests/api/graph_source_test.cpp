#include "api/graph_source.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "api/rhs.hpp"
#include "graph/connectivity.hpp"
#include "graph/io.hpp"

namespace parlap {
namespace {

/// Writes `content` to a unique temp file, removed at scope exit.
class TempFile {
 public:
  TempFile(const std::string& name, const std::string& content)
      : path_(std::string(::testing::TempDir()) + name) {
    std::ofstream os(path_);
    os << content;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(GraphSource, GeneratorSpecsProduceExpectedShapes) {
  EXPECT_EQ(make_generated_graph("path:10").num_vertices(), 10);
  EXPECT_EQ(make_generated_graph("path:10").num_edges(), 9);
  EXPECT_EQ(make_generated_graph("cycle:7").num_edges(), 7);
  EXPECT_EQ(make_generated_graph("complete:6").num_edges(), 15);
  EXPECT_EQ(make_generated_graph("star:9").num_edges(), 8);
  EXPECT_EQ(make_generated_graph("btree:15").num_edges(), 14);

  const Multigraph grid = make_generated_graph("grid2d:4");
  EXPECT_EQ(grid.num_vertices(), 16);
  EXPECT_EQ(grid.num_edges(), 24);
  EXPECT_EQ(make_generated_graph("grid2d:4,3").num_vertices(), 12);
  EXPECT_EQ(make_generated_graph("grid3d:3").num_vertices(), 27);
  EXPECT_EQ(make_generated_graph("grid3d:3,2,2").num_vertices(), 12);

  const Multigraph gnm = make_generated_graph("gnm:50,120", 3);
  EXPECT_EQ(gnm.num_vertices(), 50);
  EXPECT_EQ(gnm.num_edges(), 120);
  EXPECT_TRUE(is_connected(gnm));

  EXPECT_EQ(make_generated_graph("regular:20,4", 5).num_edges(), 40);
  EXPECT_EQ(make_generated_graph("rmat:5", 2).num_vertices(), 32);
  EXPECT_EQ(make_generated_graph("rmat:5,100", 2).num_edges(), 100);
  EXPECT_EQ(make_generated_graph("barbell:5,2").num_vertices(), 12);

  const Multigraph ws = make_generated_graph("ws:64,4,0.2", 9);
  EXPECT_EQ(ws.num_vertices(), 64);
  EXPECT_EQ(ws.num_edges(), 128);
  // beta defaults to 0.1; both forms parse.
  EXPECT_EQ(make_generated_graph("ws:30,2", 9).num_edges(), 30);
}

TEST(GraphSource, GeneratorSeedIsHonored) {
  const Multigraph a = make_generated_graph("gnm:40,100", 1);
  const Multigraph b = make_generated_graph("gnm:40,100", 1);
  const Multigraph c = make_generated_graph("gnm:40,100", 2);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  bool same_ab = true;
  bool same_ac = true;
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    same_ab = same_ab && a.edge_u(e) == b.edge_u(e) &&
              a.edge_v(e) == b.edge_v(e);
    same_ac = same_ac && a.edge_u(e) == c.edge_u(e) &&
              a.edge_v(e) == c.edge_v(e);
  }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac);
}

TEST(GraphSource, BadSpecsThrowActionableErrors) {
  const auto gen = [](const char* spec) {
    return make_generated_graph(spec).num_vertices();
  };
  EXPECT_THROW(gen("nope:4"), std::invalid_argument);
  EXPECT_THROW(gen(""), std::invalid_argument);
  EXPECT_THROW(gen("grid2d"), std::invalid_argument);
  EXPECT_THROW(gen("grid2d:x"), std::invalid_argument);
  EXPECT_THROW(gen("grid2d:4,5,6"), std::invalid_argument);
  EXPECT_THROW(gen("gnm:50"), std::invalid_argument);
  EXPECT_THROW(gen("path:-3"), std::invalid_argument);
  EXPECT_THROW(gen("path:2.5"), std::invalid_argument);
  EXPECT_THROW(gen("path:4294967297"), std::invalid_argument);  // > Vertex
  EXPECT_THROW(gen("path:1e300"), std::invalid_argument);  // > int64
  EXPECT_THROW(gen("path:inf"), std::invalid_argument);
  EXPECT_THROW(gen("path:nan"), std::invalid_argument);
  EXPECT_THROW(gen("rmat:60"), std::invalid_argument);  // default-m shift
  EXPECT_THROW(gen("rmat:4294967297"), std::invalid_argument);
  EXPECT_THROW(gen("regular:10,4294967297"), std::invalid_argument);
  EXPECT_THROW(gen("ws:100"), std::invalid_argument);          // missing k
  EXPECT_THROW(gen("ws:100,4,2.0"), std::invalid_argument);    // beta > 1
  EXPECT_THROW(gen("ws:100,4294967297"), std::invalid_argument);
  try {
    (void)make_generated_graph("wat:1");
  } catch (const std::invalid_argument& e) {
    // The error teaches the accepted families.
    EXPECT_NE(std::string(e.what()).find("grid2d"), std::string::npos);
  }
}

TEST(GraphSource, WeightModelParsing) {
  EXPECT_EQ(parse_weight_model("unit").kind, WeightModel::Kind::kUnit);
  const WeightModel u = parse_weight_model("uniform:0.5,2");
  EXPECT_EQ(u.kind, WeightModel::Kind::kUniform);
  EXPECT_DOUBLE_EQ(u.lo, 0.5);
  EXPECT_DOUBLE_EQ(u.hi, 2.0);
  const WeightModel p = parse_weight_model("powerlaw:0.1,10,2.2");
  EXPECT_EQ(p.kind, WeightModel::Kind::kPowerLaw);
  EXPECT_DOUBLE_EQ(p.exponent, 2.2);
  const auto model = [](const char* spec) {
    return parse_weight_model(spec).kind;
  };
  EXPECT_THROW(model("uniform:2,0.5"), std::invalid_argument);
  EXPECT_THROW(model("uniform:1"), std::invalid_argument);
  EXPECT_THROW(model("uniform:nan,1"), std::invalid_argument);
  EXPECT_THROW(model("uniform:1,inf"), std::invalid_argument);
  EXPECT_THROW(model("powerlaw:1,2,nan"), std::invalid_argument);
  EXPECT_THROW(model("gauss:1,2"), std::invalid_argument);
}

TEST(GraphSource, FileDispatchByExtension) {
  const TempFile mtx("gs_dispatch.mtx",
                     "%%MatrixMarket matrix coordinate real symmetric\n"
                     "3 3 2\n2 1 1.5\n3 2 2.5\n");
  const Multigraph from_mtx = load_graph_file(mtx.path());
  EXPECT_EQ(from_mtx.num_vertices(), 3);
  EXPECT_EQ(from_mtx.num_edges(), 2);
  EXPECT_DOUBLE_EQ(from_mtx.edge_weight(0), 1.5);

  const TempFile edges("gs_dispatch.txt", "0 1 1.5\n1 2 2.5\n");
  const Multigraph from_edges = load_graph_file(edges.path());
  EXPECT_EQ(from_edges.num_vertices(), 3);
  EXPECT_EQ(from_edges.num_edges(), 2);

  // Explicit format overrides the extension.
  const Multigraph forced =
      load_graph_file(edges.path(), GraphFileFormat::kEdgeList);
  EXPECT_EQ(forced.num_edges(), 2);
  EXPECT_THROW(load_graph_file(edges.path(), GraphFileFormat::kMatrixMarket),
               std::runtime_error);
  EXPECT_THROW(load_graph_file("/no/such/file.mtx"), std::runtime_error);
}

TEST(GraphSource, LaplacianKindNegatesOffDiagonals) {
  const TempFile mtx("gs_lap.mtx",
                     "%%MatrixMarket matrix coordinate real symmetric\n"
                     "2 2 3\n1 1 2.0\n2 2 2.0\n2 1 -2.0\n");
  const Multigraph g = load_graph_file(mtx.path(), GraphFileFormat::kAuto,
                                       MatrixMarketKind::kLaplacian);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 2.0);
}

TEST(Rhs, DemandAndRandomAreBalanced) {
  const Vector d = demand_rhs(6, 1, 4);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[4], -1.0);
  EXPECT_DOUBLE_EQ(sum(d), 0.0);
  EXPECT_THROW(demand_rhs(6, 2, 2), std::runtime_error);
  EXPECT_THROW(demand_rhs(6, 0, 6), std::runtime_error);

  const Vector r = random_rhs(100, 4);
  EXPECT_NEAR(sum(r), 0.0, 1e-12);
  EXPECT_EQ(random_rhs(100, 4), r);   // deterministic
  EXPECT_NE(random_rhs(100, 5), r);   // seed matters
}

TEST(Rhs, FileReadingValidates) {
  const TempFile good("rhs_good.txt", "1.0\n-0.5\n-0.5\n");
  const Vector b = read_rhs_file(good.path(), 3);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  const TempFile bad("rhs_short.txt", "1.0\n");
  EXPECT_THROW(read_rhs_file(bad.path(), 3), std::runtime_error);
  EXPECT_THROW(read_rhs_file("/no/such/rhs", 2), std::runtime_error);
}

TEST(Rhs, CompatibilityPerComponent) {
  Multigraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const Components comps = connected_components(g);
  ASSERT_EQ(comps.count, 2);

  Vector balanced = {1.0, -1.0, 0.5, -0.5};
  EXPECT_TRUE(check_rhs_compatibility(balanced, comps).compatible);

  Vector cross = {1.0, 0.0, -1.0, 0.0};  // balanced globally, not per comp
  const RhsCompatibility bad = check_rhs_compatibility(cross, comps);
  EXPECT_FALSE(bad.compatible);
  EXPECT_GT(bad.worst_imbalance, 0.5);

  const Vector zero(4, 0.0);
  EXPECT_TRUE(check_rhs_compatibility(zero, comps).compatible);
}

}  // namespace
}  // namespace parlap
