#include "api/solver_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "api/rhs.hpp"
#include "baselines/dense_direct.hpp"
#include "graph/generators.hpp"
#include "linalg/vector_ops.hpp"

namespace parlap {
namespace {

constexpr double kEps = 1e-8;

Multigraph fixed_graph() {
  Multigraph g = make_barbell(8, 5);
  apply_weights(g, WeightModel::uniform(0.5, 3.0), 11);
  return g;
}

std::vector<std::string> method_names() {
  std::vector<std::string> names;
  for (const auto& m : SolverRegistry::instance().methods()) {
    names.push_back(m.name);
  }
  return names;
}

TEST(SolverRegistry, ListsBuiltinsSorted) {
  const auto names = method_names();
  for (const char* want : {"parlap", "parlap-lev", "cg", "cg-jacobi",
                           "cg-tree", "ks16", "dense"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << "missing builtin method " << want;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const auto& m : SolverRegistry::instance().methods()) {
    EXPECT_FALSE(m.description.empty()) << m.name;
  }
}

TEST(SolverRegistry, ContainsAndKnownNames) {
  const SolverRegistry& reg = SolverRegistry::instance();
  EXPECT_TRUE(reg.contains("parlap"));
  EXPECT_FALSE(reg.contains("Parlap"));
  const std::string names = reg.known_names();
  EXPECT_NE(names.find("cg-tree"), std::string::npos);
  EXPECT_NE(names.find(", "), std::string::npos);
}

TEST(SolverRegistry, UnknownNameThrowsWithKnownList) {
  const Multigraph g = make_path(8);
  try {
    auto s = SolverRegistry::instance().create("no-such-method", g);
    FAIL() << "expected UnknownSolverError";
  } catch (const UnknownSolverError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-method"), std::string::npos);
    // The error is actionable: it lists what the user could have typed.
    EXPECT_NE(msg.find("parlap"), std::string::npos);
    EXPECT_NE(msg.find("dense"), std::string::npos);
  }
}

TEST(SolverRegistry, RejectsDuplicateAndEmptyRegistration) {
  SolverRegistry reg;
  auto factory = [](const Multigraph& g, const SolverConfig&) {
    return SolverRegistry::instance().create("dense", g);
  };
  reg.register_method("mine", "test method", factory);
  EXPECT_TRUE(reg.contains("mine"));
  EXPECT_THROW(reg.register_method("mine", "again", factory),
               std::invalid_argument);
  EXPECT_THROW(reg.register_method("", "unnamed", factory),
               std::invalid_argument);
  EXPECT_THROW(reg.register_method("null", "no factory", nullptr),
               std::invalid_argument);
}

TEST(SolverRegistry, CustomRegistrationIsCreatable) {
  SolverRegistry reg;
  reg.register_method("alias-dense", "dense under another name",
                      [](const Multigraph& g, const SolverConfig& c) {
                        return SolverRegistry::instance().create("dense", g,
                                                                 c);
                      });
  const Multigraph g = fixed_graph();
  const auto solver = reg.create("alias-dense", g);
  const Vector b = demand_rhs(g.num_vertices(), 0, g.num_vertices() - 1);
  Vector x(b.size(), 0.0);
  const RunReport r = solver->solve(b, x, kEps);
  EXPECT_TRUE(r.converged);
}

// The acceptance property of the facade: every method solves the same
// fixed system to the requested accuracy and they agree on the solution.
TEST(SolverRegistry, CrossSolverAgreementOnFixedGraph) {
  const Multigraph g = fixed_graph();
  const auto n = static_cast<std::size_t>(g.num_vertices());
  const Vector b = random_rhs(g.num_vertices(), 5);

  const DenseDirectSolver oracle(g);
  Vector want(n);
  oracle.solve(b, want);
  project_out_ones(want);

  for (const auto& m : SolverRegistry::instance().methods()) {
    const auto solver = SolverRegistry::instance().create(m.name, g);
    EXPECT_EQ(solver->method(), m.name);
    EXPECT_EQ(solver->dimension(), g.num_vertices());
    Vector x(n, 0.0);
    const RunReport r = solver->solve(b, x, kEps);
    EXPECT_TRUE(r.converged) << m.name;
    EXPECT_LE(r.relative_residual, kEps) << m.name;
    EXPECT_EQ(r.method, m.name);
    EXPECT_EQ(r.vertices, g.num_vertices());
    EXPECT_EQ(r.edges, g.num_edges());
    EXPECT_EQ(r.components, 1);
    EXPECT_GE(r.solve_seconds, 0.0);
    EXPECT_GE(r.setup_seconds, 0.0);
    EXPECT_GE(r.threads, 1);
    project_out_ones(x);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], want[i], 1e-5) << m.name << " entry " << i;
    }
  }
}

TEST(SolverRegistry, DisconnectedGraphs) {
  // Two 4-cycles; b balanced within each component.
  Multigraph g(8);
  for (Vertex base : {Vertex{0}, Vertex{4}}) {
    for (Vertex k = 0; k < 4; ++k) {
      g.add_edge(base + k, base + (k + 1) % 4, 1.0 + k);
    }
  }
  Vector b(8, 0.0);
  b[0] = 1.0;
  b[2] = -1.0;
  b[5] = 2.0;
  b[7] = -2.0;

  // Component-aware methods solve per component...
  for (const char* name : {"parlap", "cg", "cg-jacobi", "dense"}) {
    const auto solver = SolverRegistry::instance().create(name, g);
    Vector x(8, 0.0);
    const RunReport r = solver->solve(b, x, kEps);
    EXPECT_TRUE(r.converged) << name;
    EXPECT_EQ(r.components, 2) << name;
  }
  // ...single-component methods refuse with an actionable message.
  for (const char* name : {"ks16", "cg-tree"}) {
    try {
      auto solver = SolverRegistry::instance().create(name, g);
      FAIL() << name << " should reject disconnected input";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("connected"), std::string::npos)
          << name;
    }
  }
}

TEST(SolverRegistry, KernelRhsSolvesToZero) {
  const Multigraph g = make_cycle(12);
  const auto solver = SolverRegistry::instance().create("parlap", g);
  const Vector b(12, 3.5);  // pure kernel direction: projected b is zero
  Vector x(12, 1.0);
  const RunReport r = solver->solve(b, x, kEps);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  for (const double v : x) EXPECT_EQ(v, 0.0);
}

TEST(SolverRegistry, ConfigKnobsReachTheMethod) {
  const Multigraph g = fixed_graph();
  const Vector b = random_rhs(g.num_vertices(), 9);
  // An absurdly low iteration cap must prevent convergence for plain CG.
  SolverConfig capped;
  capped.max_iterations = 2;
  const auto solver = SolverRegistry::instance().create("cg", g, capped);
  Vector x(b.size(), 0.0);
  const RunReport r = solver->solve(b, x, kEps);
  EXPECT_FALSE(r.converged);
  EXPECT_LE(r.iterations, 2);

  // Same seed, same method: identical randomized factorization results.
  SolverConfig seeded;
  seeded.seed = 123;
  Vector x1(b.size(), 0.0);
  Vector x2(b.size(), 0.0);
  const RunReport r1 =
      SolverRegistry::instance().create("parlap", g, seeded)->solve(b, x1,
                                                                    kEps);
  const RunReport r2 =
      SolverRegistry::instance().create("parlap", g, seeded)->solve(b, x2,
                                                                    kEps);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(x1, x2);
}

TEST(SolverRegistry, DenseRefusesHugeInstances) {
  const Multigraph g = make_path(5000);
  EXPECT_THROW(
      { auto s = SolverRegistry::instance().create("dense", g); },
      std::invalid_argument);
}

}  // namespace
}  // namespace parlap
