// Metrics registry contract: histogram percentiles hold their
// documented error bound against exact sorted quantiles, and every
// instrument aggregates bit-identically across thread counts (the
// determinism story tsan and the worker-count e2e checks rely on).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <random>
#include <thread>
#include <vector>

namespace parlap::obs {
namespace {

/// Exact nearest-rank quantile of a sorted sample, in seconds.
double exact_quantile_seconds(const std::vector<std::uint64_t>& sorted_ns,
                              double q) {
  const auto total = static_cast<double>(sorted_ns.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * total));
  rank = std::clamp<std::size_t>(rank, 1, sorted_ns.size());
  return static_cast<double>(sorted_ns[rank - 1]) * 1e-9;
}

TEST(MetricsTest, BucketUpperBoundsRoundTrip) {
  // Every duration lands in a bucket whose upper edge is >= the value
  // and within 12.5% of it (for ns >= 8; below 8 the mapping is exact).
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> log_ns(0.0, 40.0);
  for (int i = 0; i < 20000; ++i) {
    const auto ns = static_cast<std::uint64_t>(std::exp2(log_ns(rng)));
    const std::size_t b = LatencyHistogram::bucket_index(ns);
    ASSERT_LT(b, LatencyHistogram::kBuckets);
    const std::uint64_t upper = LatencyHistogram::bucket_upper_ns(b);
    ASSERT_GE(upper, ns) << "ns=" << ns << " bucket=" << b;
    if (ns >= 8) {
      EXPECT_LE(static_cast<double>(upper),
                static_cast<double>(ns) * 1.125)
          << "ns=" << ns << " bucket=" << b;
    } else {
      EXPECT_EQ(upper, ns);
    }
  }
}

TEST(MetricsTest, PercentilesWithinBoundOfExactQuantiles) {
  // Log-uniform durations spanning ~10ns .. ~10s, fixed seed.
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> log_ns(3.5, 33.0);
  LatencyHistogram hist;
  std::vector<std::uint64_t> samples;
  samples.reserve(50000);
  for (int i = 0; i < 50000; ++i) {
    const auto ns = static_cast<std::uint64_t>(std::exp2(log_ns(rng)));
    samples.push_back(ns);
    hist.record_ns(ns);
  }
  std::sort(samples.begin(), samples.end());

  EXPECT_EQ(hist.count(), samples.size());
  for (const double q : {0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    const double exact = exact_quantile_seconds(samples, q);
    const double approx = hist.percentile_seconds(q);
    // Never below the exact order statistic, never more than the
    // documented 12.5% above it.
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(approx, exact * 1.125 + 1e-12) << "q=" << q;
  }
}

TEST(MetricsTest, PercentilesAreMonotoneInQ) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<std::uint64_t> ns(1, std::uint64_t{1} << 30);
  LatencyHistogram hist;
  for (int i = 0; i < 10000; ++i) hist.record_ns(ns(rng));
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double v = hist.percentile_seconds(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  const double p50 = hist.percentile_seconds(0.50);
  const double p95 = hist.percentile_seconds(0.95);
  const double p99 = hist.percentile_seconds(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
}

TEST(MetricsTest, EmptyHistogramReportsZero) {
  const LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.percentile_seconds(0.5), 0.0);
  EXPECT_EQ(hist.mean_seconds(), 0.0);
}

/// Runs `work(thread_index)` on `threads` concurrent threads.
void run_on(int threads, const std::function<void(int)>& work) {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(work, t);
  for (auto& th : pool) th.join();
}

TEST(MetricsTest, CounterTotalsBitIdenticalAcrossThreadCounts) {
  // The same 40k increments, split across 1 vs 4 workers, must land on
  // the same totals bit-for-bit. Counter adds are integer fetch_adds
  // (exact by construction); RealCounter uses exactly-representable
  // doubles so the CAS-loop sums cannot round differently by order.
  constexpr int kPerThread = 10000;
  std::uint64_t count_totals[2];
  double real_totals[2];
  const int thread_counts[2] = {1, 4};
  for (int c = 0; c < 2; ++c) {
    Counter counter;
    RealCounter real;
    const int threads = thread_counts[c];
    const int per_thread = kPerThread * 4 / threads;
    run_on(threads, [&](int) {
      for (int i = 0; i < per_thread; ++i) {
        counter.add(3);
        real.add(0.25);
      }
    });
    count_totals[c] = counter.value();
    real_totals[c] = real.value();
  }
  EXPECT_EQ(count_totals[0], count_totals[1]);
  EXPECT_EQ(real_totals[0], real_totals[1]);
  EXPECT_EQ(count_totals[0], std::uint64_t{3} * 4 * kPerThread);
  EXPECT_EQ(real_totals[0], 0.25 * 4 * kPerThread);
}

TEST(MetricsTest, HistogramBucketsIdenticalAcrossThreadCounts) {
  // The same sample multiset recorded from 1 vs 4 threads fills the
  // same buckets with the same counts, so every derived percentile is
  // identical too.
  constexpr int kSamples = 40000;
  std::vector<std::uint64_t> samples;
  samples.reserve(kSamples);
  std::mt19937_64 rng(1234);
  std::uniform_int_distribution<std::uint64_t> ns(0, std::uint64_t{1} << 34);
  for (int i = 0; i < kSamples; ++i) samples.push_back(ns(rng));

  LatencyHistogram hists[2];
  const int thread_counts[2] = {1, 4};
  for (int c = 0; c < 2; ++c) {
    const int threads = thread_counts[c];
    const int chunk = kSamples / threads;
    run_on(threads, [&, c](int t) {
      for (int i = t * chunk; i < (t + 1) * chunk; ++i) {
        hists[c].record_ns(samples[static_cast<std::size_t>(i)]);
      }
    });
  }
  EXPECT_EQ(hists[0].count(), hists[1].count());
  EXPECT_EQ(hists[0].sum_seconds(), hists[1].sum_seconds());
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    ASSERT_EQ(hists[0].bucket_count(b), hists[1].bucket_count(b))
        << "bucket " << b;
  }
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(hists[0].percentile_seconds(q), hists[1].percentile_seconds(q));
  }
}

TEST(MetricsTest, RegistryFindOrCreateIsStable) {
  MetricsRegistry reg;
  Counter& a = reg.counter("test.counter");
  Counter& b = reg.counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.add(5);
  EXPECT_EQ(b.value(), 5u);

  // Concurrent find-or-create of overlapping names is safe and yields
  // one instrument per name.
  run_on(4, [&](int t) {
    for (int i = 0; i < 1000; ++i) {
      reg.counter("test.shared").add(1);
      reg.histogram("test.hist").record_ns(static_cast<std::uint64_t>(t + 1));
    }
  });
  EXPECT_EQ(reg.counter("test.shared").value(), 4000u);
  EXPECT_EQ(reg.histogram("test.hist").count(), 4000u);
}

TEST(MetricsTest, SnapshotExportsSortedSamplesAndResetZeroes) {
  MetricsRegistry reg;
  reg.counter("z.last").add(2);
  reg.real_counter("a.first").add(1.5);
  reg.gauge("m.mid").set(-3);
  reg.histogram("h.lat").record_seconds(0.001);

  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_TRUE(std::is_sorted(
      samples.begin(), samples.end(),
      [](const MetricSample& x, const MetricSample& y) {
        return x.name < y.name;
      }));
  for (const MetricSample& s : samples) {
    if (s.name == "z.last") {
      EXPECT_EQ(s.kind, MetricSample::Kind::kCounter);
      EXPECT_EQ(s.value, 2.0);
    } else if (s.name == "a.first") {
      EXPECT_EQ(s.kind, MetricSample::Kind::kRealCounter);
      EXPECT_EQ(s.value, 1.5);
    } else if (s.name == "m.mid") {
      EXPECT_EQ(s.kind, MetricSample::Kind::kGauge);
      EXPECT_EQ(s.value, -3.0);
    } else if (s.name == "h.lat") {
      EXPECT_EQ(s.kind, MetricSample::Kind::kHistogram);
      EXPECT_EQ(s.count, 1u);
      EXPECT_GT(s.p50, 0.0);
      EXPECT_LE(s.p50, s.p95);
      EXPECT_LE(s.p95, s.p99);
    }
  }

  reg.reset();
  for (const MetricSample& s : reg.snapshot()) {
    EXPECT_EQ(s.value, 0.0) << s.name;
    EXPECT_EQ(s.count, 0u) << s.name;
  }
}

}  // namespace
}  // namespace parlap::obs
