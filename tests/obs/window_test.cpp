// Windowed-instrument contract: epoch advance includes exactly the
// requested window, empty windows digest to zeros, a window merge is
// bucket-identical to a lifetime histogram fed the same samples, and
// aggregation is bit-identical across thread counts (the tsan-routed
// concurrency surface of the serve daemon's last-60s stats).
#include "obs/window.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace parlap::obs {
namespace {

// A microsecond epoch keeps the arithmetic readable: epoch e spans
// [e*1000, (e+1)*1000) ns on the injected clock.
constexpr std::uint64_t kEpochNs = 1000;

std::uint64_t at_epoch(std::uint64_t epoch) { return epoch * kEpochNs + 1; }

TEST(WindowTest, EmptyWindowDigestsToZero) {
  const WindowedHistogram w(kEpochNs);
  const WindowDigest d = w.digest_at(10 * kEpochNs, at_epoch(5));
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.sum_seconds, 0.0);
  EXPECT_EQ(d.mean, 0.0);
  EXPECT_EQ(d.p50, 0.0);
  EXPECT_EQ(d.p95, 0.0);
  EXPECT_EQ(d.p99, 0.0);
  EXPECT_EQ(d.window_seconds, 10 * kEpochNs * 1e-9);
}

TEST(WindowTest, EpochAdvanceExpiresOldSamples) {
  WindowedHistogram w(kEpochNs);
  w.record_ns_at(500, at_epoch(0));
  w.record_ns_at(600, at_epoch(1));
  w.record_ns_at(700, at_epoch(4));

  // From epoch 4, a 4-epoch window covers epochs 0..4.
  EXPECT_EQ(w.digest_at(4 * kEpochNs, at_epoch(4)).count, 3u);
  // A 2-epoch window from epoch 4 covers epochs 2..4: only the 700.
  EXPECT_EQ(w.digest_at(2 * kEpochNs, at_epoch(4)).count, 1u);
  // The window boundary is inclusive: from epoch 6 a 2-epoch window
  // still covers epochs 4..6 (two full epochs plus the current partial
  // one), so the 700 survives; from epoch 7 it has aged out.
  EXPECT_EQ(w.digest_at(2 * kEpochNs, at_epoch(6)).count, 1u);
  EXPECT_EQ(w.digest_at(2 * kEpochNs, at_epoch(7)).count, 0u);
  // A window wider than the ring clamps to kSlots - 1 epochs.
  EXPECT_EQ(
      w.digest_at(100 * kEpochNs, at_epoch(4)).count, 3u);
}

TEST(WindowTest, RingReuseResetsRecycledSlot) {
  WindowedHistogram w(kEpochNs);
  w.record_ns_at(100, at_epoch(2));
  w.record_ns_at(100, at_epoch(2));
  // Epoch 2 + kSlots maps onto the same ring slot; the first record of
  // the new epoch must reset the old contents, not add to them.
  const std::uint64_t e2 = 2 + WindowedHistogram::kSlots;
  w.record_ns_at(300, at_epoch(e2));
  const WindowDigest d = w.digest_at(kEpochNs, at_epoch(e2));
  EXPECT_EQ(d.count, 1u);
  // An ancient record (clock before the slot's current epoch) drops
  // instead of polluting the newer epoch.
  w.record_ns_at(900, at_epoch(2));
  EXPECT_EQ(w.digest_at(kEpochNs, at_epoch(e2)).count, 1u);
  // And the whole-ring view holds only the surviving new-epoch sample.
  EXPECT_EQ(
      w.digest_at((WindowedHistogram::kSlots - 1) * kEpochNs, at_epoch(e2))
          .count,
      1u);
}

TEST(WindowTest, WindowMergeMatchesLifetimeHistogram) {
  // Samples spread over several epochs inside the window: merging the
  // window must reproduce the lifetime histogram bucket-for-bucket,
  // so window percentiles are the same function of the same data.
  WindowedHistogram w(kEpochNs);
  LatencyHistogram lifetime;
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::uint64_t> dur(1, 50'000'000);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t ns = dur(rng);
    w.record_ns_at(ns, at_epoch(static_cast<std::uint64_t>(i % 8)));
    lifetime.record_ns(ns);
  }
  LatencyHistogram merged;
  w.merge_window_into(merged, 8 * kEpochNs, at_epoch(8));
  ASSERT_EQ(merged.count(), lifetime.count());
  EXPECT_EQ(merged.sum_seconds(), lifetime.sum_seconds());
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    ASSERT_EQ(merged.bucket_count(b), lifetime.bucket_count(b))
        << "bucket " << b;
  }
  const WindowDigest d = w.digest_at(8 * kEpochNs, at_epoch(8));
  EXPECT_EQ(d.count, lifetime.count());
  EXPECT_EQ(d.p50, lifetime.percentile_seconds(0.50));
  EXPECT_EQ(d.p95, lifetime.percentile_seconds(0.95));
  EXPECT_EQ(d.p99, lifetime.percentile_seconds(0.99));
}

TEST(WindowTest, AggregationBitIdenticalAcrossThreadCounts) {
  // The same multiset of (sample, timestamp) pairs recorded by 1 thread
  // and by 4 must produce identical buckets — the counts are relaxed
  // fetch_adds, so totals are exact regardless of interleaving.
  std::mt19937_64 rng(23);
  std::uniform_int_distribution<std::uint64_t> dur(1, 10'000'000);
  std::vector<std::uint64_t> samples(8000);
  for (std::uint64_t& s : samples) s = dur(rng);

  const auto run = [&](int threads) {
    auto w = std::make_unique<WindowedHistogram>(kEpochNs);
    std::vector<std::thread> pool;
    const std::size_t chunk = samples.size() / static_cast<std::size_t>(threads);
    for (int t = 0; t < threads; ++t) {
      const std::size_t lo = static_cast<std::size_t>(t) * chunk;
      const std::size_t hi =
          t + 1 == threads ? samples.size() : lo + chunk;
      pool.emplace_back([&, lo, hi] {
        for (std::size_t i = lo; i < hi; ++i) {
          // Spread across 4 in-window epochs, deterministically by index.
          w->record_ns_at(samples[i], at_epoch(i % 4));
        }
      });
    }
    for (std::thread& t : pool) t.join();
    return w;
  };

  const auto w1 = run(1);
  const auto w4 = run(4);
  LatencyHistogram m1;
  LatencyHistogram m4;
  w1->merge_window_into(m1, 4 * kEpochNs, at_epoch(4));
  w4->merge_window_into(m4, 4 * kEpochNs, at_epoch(4));
  ASSERT_EQ(m1.count(), samples.size());
  ASSERT_EQ(m4.count(), samples.size());
  EXPECT_EQ(m1.sum_seconds(), m4.sum_seconds());
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    ASSERT_EQ(m1.bucket_count(b), m4.bucket_count(b)) << "bucket " << b;
  }
}

TEST(WindowTest, ConcurrentEpochTurnover) {
  // Writers racing across an epoch boundary: every record lands in its
  // own epoch's slot or is dropped as ancient — never double-counted.
  // (The tsan preset checks the reset CAS protocol for races here.)
  WindowedHistogram w(kEpochNs);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 4000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&w, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        // All threads sweep the same epochs forward together.
        w.record_ns_at(100 + static_cast<std::uint64_t>(t),
                       at_epoch(i / 500));
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const WindowDigest d =
      w.digest_at((WindowedHistogram::kSlots - 1) * kEpochNs,
                  at_epoch(kPerThread / 500 - 1));
  // Records racing a slot reset may drop (documented), never duplicate.
  EXPECT_LE(d.count, kThreads * kPerThread);
  EXPECT_GE(d.count, kPerThread);  // the winner of each reset records
}

TEST(WindowTest, WindowedCounterSumsAndExpires) {
  WindowedCounter c(kEpochNs);
  c.add_at(3, at_epoch(0));
  c.add_at(2, at_epoch(1));
  c.add_at(5, at_epoch(4));
  EXPECT_EQ(c.sum_at(4 * kEpochNs, at_epoch(4)), 10u);
  EXPECT_EQ(c.sum_at(2 * kEpochNs, at_epoch(4)), 5u);
  EXPECT_EQ(c.sum_at(2 * kEpochNs, at_epoch(7)), 0u);
  // Ring reuse: the recycled slot restarts from zero.
  c.add_at(7, at_epoch(4 + WindowedCounter::kSlots));
  EXPECT_EQ(c.sum_at(kEpochNs, at_epoch(4 + WindowedCounter::kSlots)), 7u);
  // Ancient add after the slot advanced: dropped.
  c.add_at(100, at_epoch(4));
  EXPECT_EQ(c.sum_at(kEpochNs, at_epoch(4 + WindowedCounter::kSlots)), 7u);
}

TEST(WindowTest, DefaultClockEntryPointsRecord) {
  // The production entry points (steady_now_ns clock) land in the
  // current epoch and are visible to an immediate digest.
  WindowedHistogram w;  // default 5s epochs, 60s window use
  w.record_seconds(0.001);
  w.record_ns(250);
  const WindowDigest d = w.digest(60'000'000'000ull);
  EXPECT_EQ(d.count, 2u);
  WindowedCounter c;
  c.add();
  c.add(4);
  EXPECT_EQ(c.sum(60'000'000'000ull), 5u);
}

}  // namespace
}  // namespace parlap::obs
