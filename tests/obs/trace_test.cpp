// Span tracer contract: the disabled path allocates nothing, enabled
// spans land in Chrome trace-event JSON with their args, and overflow
// drops instead of blocking.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/json.hpp"

namespace {

// Global operator new/delete instrumentation. Counting is exact for
// this process: every allocation in the test binary routes through
// here, so a zero delta across a region proves the region did not
// allocate.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// GCC cannot see that every new in this binary routes through these
// malloc-backed replacements, so it flags the free() as mismatched
// under the sanitizer builds; the pairing is correct by construction.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

namespace parlap::obs {
namespace {

/// Checked member lookup on a parsed trace document; fails the test with
/// the missing key's name instead of dereferencing null.
const service::JsonValue& at(const service::JsonValue& v, const char* key) {
  const service::JsonValue* member = v.find(key);
  EXPECT_NE(member, nullptr) << "missing key: " << key;
  if (member == nullptr) {
    static const service::JsonValue null_value;
    return null_value;
  }
  return *member;
}

TEST(TraceTest, DisabledSpanAllocatesNothing) {
  Tracer::instance().disable();
  ASSERT_FALSE(Tracer::enabled());

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 100000; ++i) {
    PARLAP_TRACE_SPAN("noop", "test");
    PARLAP_TRACE_SPAN_N(named, "noop2", "test");
    named.arg("k", static_cast<double>(i));
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before) << "disabled spans must not allocate";
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
}

TEST(TraceTest, DisabledSpanRecordsNothing) {
  Tracer::instance().disable();
  Tracer::instance().clear();
  {
    PARLAP_TRACE_SPAN("invisible", "test");
  }
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
  EXPECT_EQ(Tracer::instance().dropped(), 0u);
}

TEST(TraceTest, EnabledSpansEmitValidChromeJson) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  tracer.enable();
  {
    PARLAP_TRACE_SPAN_N(outer, "outer", "test");
    outer.arg("answer", 42.0);
    { PARLAP_TRACE_SPAN("inner", "test"); }
  }
  // A second thread gets its own buffer and tid.
  std::thread worker([] { PARLAP_TRACE_SPAN("worker", "test"); });
  worker.join();
  tracer.disable();

  EXPECT_EQ(tracer.event_count(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);

  std::ostringstream os;
  tracer.write_chrome(os);
  const service::JsonValue doc = service::parse_json(os.str());
  const auto& events = at(doc, "traceEvents").as_array();
  ASSERT_EQ(events.size(), 3u);

  bool saw_outer = false;
  bool saw_inner = false;
  bool saw_worker = false;
  std::uint64_t main_tid = 0;
  std::uint64_t worker_tid = 0;
  for (const service::JsonValue& ev : events) {
    EXPECT_EQ(at(ev, "ph").as_string(), "X");
    EXPECT_EQ(at(ev, "cat").as_string(), "test");
    EXPECT_GE(at(ev, "ts").as_number(), 0.0);
    EXPECT_GE(at(ev, "dur").as_number(), 0.0);
    EXPECT_GT(at(at(ev, "args"), "span_id").as_number(), 0.0);
    const std::string& name = at(ev, "name").as_string();
    if (name == "outer") {
      saw_outer = true;
      main_tid = static_cast<std::uint64_t>(at(ev, "tid").as_number());
      EXPECT_EQ(at(at(ev, "args"), "answer").as_number(), 42.0);
    } else if (name == "inner") {
      saw_inner = true;
    } else if (name == "worker") {
      saw_worker = true;
      worker_tid = static_cast<std::uint64_t>(at(ev, "tid").as_number());
    }
  }
  EXPECT_TRUE(saw_outer && saw_inner && saw_worker);
  EXPECT_NE(main_tid, worker_tid);
  tracer.clear();
}

TEST(TraceTest, NestedSpanIsContainedInParent) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  tracer.enable();
  {
    PARLAP_TRACE_SPAN("parent", "test");
    { PARLAP_TRACE_SPAN("child", "test"); }
  }
  tracer.disable();
  std::ostringstream os;
  tracer.write_chrome(os);
  const service::JsonValue doc = service::parse_json(os.str());
  double parent_ts = -1;
  double parent_end = -1;
  double child_ts = -1;
  double child_end = -1;
  for (const service::JsonValue& ev : at(doc, "traceEvents").as_array()) {
    const double ts = at(ev, "ts").as_number();
    const double end = ts + at(ev, "dur").as_number();
    if (at(ev, "name").as_string() == "parent") {
      parent_ts = ts;
      parent_end = end;
    } else if (at(ev, "name").as_string() == "child") {
      child_ts = ts;
      child_end = end;
    }
  }
  ASSERT_GE(parent_ts, 0.0);
  ASSERT_GE(child_ts, 0.0);
  EXPECT_LE(parent_ts, child_ts);
  EXPECT_GE(parent_end, child_end);
  tracer.clear();
}

TEST(TraceTest, ManualEndClosesOnceAndArgsStick) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  tracer.enable();
  {
    PARLAP_TRACE_SPAN_N(span, "phased", "test");
    span.arg("k", 7.0);
    span.end();
    span.end();  // idempotent: the destructor must not double-record
  }
  tracer.disable();
  EXPECT_EQ(tracer.event_count(), 1u);
  std::ostringstream os;
  tracer.write_chrome(os);
  const service::JsonValue doc = service::parse_json(os.str());
  const auto& events = at(doc, "traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(at(at(events[0], "args"), "k").as_number(), 7.0);
  tracer.clear();
}

TEST(TraceTest, OverflowDropsInsteadOfGrowing) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  tracer.enable();
  const std::size_t before = tracer.event_count();
  // One thread can hold kBufferCapacity events; overfill by 1000.
  for (std::size_t i = 0; i < Tracer::kBufferCapacity + 1000; ++i) {
    PARLAP_TRACE_SPAN("flood", "test");
  }
  tracer.disable();
  EXPECT_LE(tracer.event_count() - before, Tracer::kBufferCapacity);
  EXPECT_GE(tracer.dropped(), 1000u);
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TraceTest, ClearedEventsDoNotReappear) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  tracer.enable();
  { PARLAP_TRACE_SPAN("once", "test"); }
  tracer.disable();
  tracer.clear();
  std::ostringstream os;
  tracer.write_chrome(os);
  const service::JsonValue doc = service::parse_json(os.str());
  EXPECT_TRUE(at(doc, "traceEvents").as_array().empty());
}

}  // namespace
}  // namespace parlap::obs
