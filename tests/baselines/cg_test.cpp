#include <gtest/gtest.h>

#include "baselines/cg.hpp"
#include "baselines/dense_direct.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace parlap {
namespace {

Vector random_rhs(Vertex n, std::uint64_t seed) {
  Vector b(static_cast<std::size_t>(n));
  Rng rng(seed, RngTag::kTest, 2);
  for (auto& v : b) v = rng.next_in(-1.0, 1.0);
  project_out_ones(b);
  return b;
}

TEST(Cg, SolvesGridSystem) {
  const Multigraph g = make_grid2d(10, 10);
  const LaplacianOperator op(g);
  const Vector b = random_rhs(100, 1);
  Vector x(100, 0.0);
  const IterationStats st = conjugate_gradient(op, b, x, 1e-10);
  EXPECT_TRUE(st.reached_target);
  const Vector lx = op.apply(x);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_NEAR(lx[i], b[i], 1e-7);
}

TEST(Cg, MatchesDenseOracle) {
  Multigraph g = make_erdos_renyi(60, 200, 2);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 3);
  const LaplacianOperator op(g);
  const Vector b = random_rhs(60, 4);
  Vector x(60, 0.0);
  conjugate_gradient(op, b, x, 1e-12);
  const DenseDirectSolver oracle(g);
  Vector want(60);
  oracle.solve(b, want);
  project_out_ones(want);
  for (std::size_t i = 0; i < 60; ++i) EXPECT_NEAR(x[i], want[i], 1e-6);
}

TEST(Cg, IterationsGrowWithPathLength) {
  // kappa(path_n) ~ n^2 so CG needs ~n iterations: the behaviour the
  // block Cholesky preconditioner eliminates (bench E3).
  Vector iters;
  for (const Vertex n : {64, 256}) {
    const Multigraph g = make_path(n);
    const LaplacianOperator op(g);
    const Vector b = random_rhs(n, 5);
    Vector x(static_cast<std::size_t>(n), 0.0);
    const IterationStats st = conjugate_gradient(op, b, x, 1e-8);
    iters.push_back(st.iterations);
  }
  EXPECT_GT(iters[1], 2.0 * iters[0]);
}

TEST(Pcg, JacobiPreconditionerHelpsOnSkewedDegrees) {
  Multigraph g = make_star(400);
  apply_weights(g, WeightModel::power_law(0.01, 100.0, 2.0), 6);
  const LaplacianOperator op(g);
  const Vector b = random_rhs(400, 7);
  Vector x_plain(400, 0.0);
  Vector x_pc(400, 0.0);
  const IterationStats plain = conjugate_gradient(op, b, x_plain, 1e-10);
  const IterationStats pc = preconditioned_cg(
      op, jacobi_diagonal_preconditioner(op), b, x_pc, 1e-10);
  EXPECT_TRUE(pc.reached_target);
  EXPECT_LE(pc.iterations, plain.iterations);
}

TEST(Cg, ZeroRhs) {
  const Multigraph g = make_path(8);
  const LaplacianOperator op(g);
  const Vector b(8, 0.0);
  Vector x(8, 3.0);
  const IterationStats st = conjugate_gradient(op, b, x, 1e-8);
  EXPECT_TRUE(st.reached_target);
  for (const double v : x) EXPECT_EQ(v, 0.0);
}

TEST(Cg, RespectsIterationCap) {
  const Multigraph g = make_path(500);
  const LaplacianOperator op(g);
  const Vector b = random_rhs(500, 8);
  Vector x(500, 0.0);
  CgOptions opts;
  opts.max_iterations = 5;
  const IterationStats st = conjugate_gradient(op, b, x, 1e-14, opts);
  EXPECT_FALSE(st.reached_target);
  EXPECT_LE(st.iterations, 5);
}

}  // namespace
}  // namespace parlap
