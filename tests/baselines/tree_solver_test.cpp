#include "baselines/tree_solver.hpp"

#include <gtest/gtest.h>

#include "baselines/dense_direct.hpp"
#include "core/spanning_tree.hpp"
#include "graph/generators.hpp"
#include "linalg/laplacian_op.hpp"
#include "support/rng.hpp"

namespace parlap {
namespace {

Vector balanced_rhs(Vertex n, std::uint64_t seed) {
  Vector b(static_cast<std::size_t>(n));
  Rng rng(seed, RngTag::kTest, 77);
  for (auto& v : b) v = rng.next_in(-1.0, 1.0);
  project_out_ones(b);
  return b;
}

TEST(TreeSolver, ExactOnWeightedTree) {
  Multigraph t = make_binary_tree(31);
  apply_weights(t, WeightModel::uniform(0.25, 4.0), 3);
  const TreeSolver solver(t);
  EXPECT_EQ(solver.dimension(), 31);
  const Vector b = balanced_rhs(31, 1);
  Vector x(31, 0.0);
  solver.solve(b, x);
  // Exact: T x reproduces b to machine precision, and x is mean-free.
  const Vector tx = LaplacianOperator(t).apply(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(tx[i], b[i], 1e-12);
  EXPECT_NEAR(sum(x), 0.0, 1e-10);
}

TEST(TreeSolver, MatchesDensePseudoInverse) {
  Multigraph t = make_path(20);
  apply_weights(t, WeightModel::uniform(0.5, 2.0), 9);
  const TreeSolver solver(t);
  const DenseDirectSolver oracle(t);
  const Vector b = balanced_rhs(20, 2);
  Vector x(20, 0.0);
  Vector want(20, 0.0);
  solver.solve(b, x);
  oracle.solve(b, want);
  project_out_ones(want);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], want[i], 1e-9);
}

TEST(TreeSolver, SolveAllowsAliasing) {
  Multigraph t = make_star(10);
  const TreeSolver solver(t);
  Vector b = balanced_rhs(10, 3);
  Vector want(10, 0.0);
  solver.solve(b, want);
  solver.solve(b, b);  // in place
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], want[i]);
}

TEST(TreeSolver, SampledSpanningTreeIsSolvable) {
  const Multigraph g = make_grid2d(6, 6);
  const Multigraph t = sample_spanning_tree(g, 4);
  const TreeSolver solver(t);
  const Vector b = balanced_rhs(36, 4);
  Vector x(36, 0.0);
  solver.solve(b, x);
  const Vector tx = LaplacianOperator(t).apply(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(tx[i], b[i], 1e-11);
}

TEST(TreeSolver, RejectsNonTrees) {
  const auto build = [](const Multigraph& g) { return TreeSolver(g).dimension(); };
  EXPECT_THROW(build(make_cycle(5)), std::runtime_error);  // n edges
  Multigraph forest(4);  // n-1 edges but disconnected (multi-edge + island)
  forest.add_edge(0, 1, 1.0);
  forest.add_edge(0, 1, 1.0);
  forest.add_edge(2, 3, 1.0);
  EXPECT_THROW(build(forest), std::runtime_error);
  EXPECT_THROW(build(Multigraph(0)), std::runtime_error);
}

}  // namespace
}  // namespace parlap
