// KS16 baseline tests: the approximate LDL' factors form a working
// preconditioner, solve to accuracy across families, and stay sparse.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dense_direct.hpp"
#include "baselines/ks16.hpp"
#include "core/alpha_bound.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace parlap {
namespace {

Vector random_rhs(Vertex n, std::uint64_t seed) {
  Vector b(static_cast<std::size_t>(n));
  Rng rng(seed, RngTag::kTest, 3);
  for (auto& v : b) v = rng.next_in(-1.0, 1.0);
  project_out_ones(b);
  return b;
}

class Ks16FamilyTest : public ::testing::TestWithParam<int> {
 protected:
  Multigraph graph() const {
    switch (GetParam()) {
      case 0:
        return make_grid2d(12, 12);
      case 1: {
        Multigraph g = make_erdos_renyi(200, 900, 1);
        apply_weights(g, WeightModel::uniform(0.5, 2.0), 2);
        return g;
      }
      case 2:
        return make_binary_tree(127);
      default:
        return make_barbell(40, 20);
    }
  }
};

TEST_P(Ks16FamilyTest, SolvesToAccuracy) {
  const Multigraph g = graph();
  const Ks16Solver solver(g);
  const Vector b = random_rhs(g.num_vertices(), 5);
  Vector x(b.size(), 0.0);
  const IterationStats st = solver.solve(b, x, 1e-8);
  EXPECT_TRUE(st.reached_target);
  const LaplacianOperator op(g);
  const Vector lx = op.apply(x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(lx[i], b[i], 1e-5);
}

TEST_P(Ks16FamilyTest, PreconditionerBeatsPlainCg) {
  const Multigraph g = graph();
  const Ks16Solver solver(g);
  const LaplacianOperator op(g);
  const Vector b = random_rhs(g.num_vertices(), 7);
  Vector x1(b.size(), 0.0);
  Vector x2(b.size(), 0.0);
  const IterationStats pcg = solver.solve(b, x1, 1e-8);
  const IterationStats plain = conjugate_gradient(op, b, x2, 1e-8);
  EXPECT_LE(pcg.iterations, plain.iterations);
}

INSTANTIATE_TEST_SUITE_P(Families, Ks16FamilyTest, ::testing::Range(0, 4));

TEST(Ks16, FactorFillIsLogLinear) {
  // CliqueSample spawns <= 1 edge per consumed edge, but an edge's
  // descendants chain through later eliminations: expected total fill is
  // O(m log n) (the KS16 analysis), not O(m).
  const Multigraph g = make_erdos_renyi(500, 2500, 9);
  Ks16Options opts;
  opts.split_scale = 0.1;
  const Ks16Solver solver(g, opts);
  const EdgeId split_edges =
      g.num_edges() * default_split_copies(g.num_vertices(), 0.1);
  const double log_n = std::log(static_cast<double>(g.num_vertices()));
  EXPECT_LE(solver.factor_entries(),
            static_cast<EdgeId>(3.0 * log_n * static_cast<double>(split_edges)));
  EXPECT_GE(solver.factor_entries(), split_edges / 2);  // sanity floor
}

TEST(Ks16, DeterministicGivenSeed) {
  const Multigraph g = make_grid2d(10, 10);
  const Ks16Solver a(g);
  const Ks16Solver b(g);
  const Vector r = random_rhs(100, 11);
  Vector ya(100), yb(100);
  a.apply_preconditioner(r, ya);
  b.apply_preconditioner(r, yb);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Ks16, RequiresConnectedGraph) {
  Multigraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_THROW(Ks16Solver s(g), std::runtime_error);
}

}  // namespace
}  // namespace parlap
