// Prefix-scan tests including the parallel path (large inputs) against the
// trivially correct serial computation.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "parallel/scan.hpp"

namespace parlap {
namespace {

TEST(Scan, SmallSerialPath) {
  std::vector<std::int64_t> v{3, 1, 4, 1, 5};
  const std::int64_t total = exclusive_scan(std::span<std::int64_t>(v));
  EXPECT_EQ(total, 14);
  EXPECT_EQ(v, (std::vector<std::int64_t>{0, 3, 4, 8, 9}));
}

TEST(Scan, WithInit) {
  std::vector<std::int64_t> v{1, 1, 1};
  const std::int64_t total =
      exclusive_scan(std::span<std::int64_t>(v), std::int64_t{10});
  EXPECT_EQ(total, 13);
  EXPECT_EQ(v, (std::vector<std::int64_t>{10, 11, 12}));
}

TEST(Scan, Empty) {
  std::vector<std::int64_t> v;
  EXPECT_EQ(exclusive_scan(std::span<std::int64_t>(v)), 0);
}

class ScanSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanSizeTest, MatchesSerialReference) {
  const std::size_t n = GetParam();
  std::vector<std::int64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::int64_t>((i * 2654435761u) % 97);
  }
  std::vector<std::int64_t> expected(n);
  std::int64_t run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = run;
    run += v[i];
  }
  const std::int64_t total = exclusive_scan(std::span<std::int64_t>(v));
  EXPECT_EQ(total, run);
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizeTest,
                         ::testing::Values(1, 2, 1000, (1 << 14) - 1,
                                           1 << 14, (1 << 14) + 1, 1 << 17,
                                           (1 << 20) + 13));

TEST(OffsetsFromCounts, BuildsCsrOffsets) {
  const std::vector<std::int64_t> counts{2, 0, 3, 1};
  const std::vector<std::int64_t> offsets =
      offsets_from_counts(std::span<const std::int64_t>(counts));
  EXPECT_EQ(offsets, (std::vector<std::int64_t>{0, 2, 2, 5, 6}));
}

TEST(OffsetsFromCounts, LargeMatchesSum) {
  std::vector<std::int64_t> counts(1 << 18, 3);
  const auto offsets = offsets_from_counts(std::span<const std::int64_t>(counts));
  EXPECT_EQ(offsets.front(), 0);
  EXPECT_EQ(offsets.back(), 3ll << 18);
}

}  // namespace
}  // namespace parlap
