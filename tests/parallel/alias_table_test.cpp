// Alias-table tests: exact distribution recovery (chi-squared), zero
// weights, degenerate sizes — the correctness of every random walk step
// rests on this sampler.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "parallel/alias_table.hpp"
#include "support/rng.hpp"

namespace parlap {
namespace {

std::vector<double> empirical_distribution(const AliasTable& table,
                                           std::size_t k, int draws,
                                           std::uint64_t seed) {
  std::vector<double> freq(k, 0.0);
  Rng rng(seed, RngTag::kTest, 0);
  for (int i = 0; i < draws; ++i) {
    ++freq[static_cast<std::size_t>(table.sample(rng))];
  }
  for (auto& f : freq) f /= draws;
  return freq;
}

TEST(AliasTable, SingleItem) {
  const std::vector<double> w{2.5};
  AliasTable t(w);
  Rng rng(1, RngTag::kTest, 0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(t.sample(rng), 0);
  EXPECT_DOUBLE_EQ(t.total_weight(), 2.5);
}

TEST(AliasTable, UniformWeights) {
  const std::vector<double> w(8, 1.0);
  AliasTable t(w);
  const auto freq = empirical_distribution(t, 8, 80000, 2);
  for (const double f : freq) EXPECT_NEAR(f, 0.125, 0.01);
}

TEST(AliasTable, SkewedWeights) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  AliasTable t(w);
  const auto freq = empirical_distribution(t, 4, 200000, 3);
  EXPECT_NEAR(freq[0], 0.1, 0.01);
  EXPECT_NEAR(freq[1], 0.2, 0.01);
  EXPECT_NEAR(freq[2], 0.3, 0.01);
  EXPECT_NEAR(freq[3], 0.4, 0.01);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  const std::vector<double> w{0.0, 1.0, 0.0, 1.0};
  AliasTable t(w);
  Rng rng(4, RngTag::kTest, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::int32_t s = t.sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTable, ExtremeWeightRatio) {
  const std::vector<double> w{1e-12, 1.0};
  AliasTable t(w);
  Rng rng(5, RngTag::kTest, 0);
  int zero_count = 0;
  for (int i = 0; i < 100000; ++i) zero_count += t.sample(rng) == 0 ? 1 : 0;
  EXPECT_LE(zero_count, 2);  // p ~ 1e-12
}

TEST(AliasTable, RejectsNegativeWeight) {
  const std::vector<double> w{1.0, -0.5};
  EXPECT_THROW(AliasTable t(w), std::runtime_error);
}

TEST(AliasTable, RejectsAllZero) {
  const std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(AliasTable t(w), std::runtime_error);
}

TEST(AliasTable, ChiSquaredLargeTable) {
  std::vector<double> w(100);
  Rng wrng(6, RngTag::kTest, 1);
  double total = 0.0;
  for (auto& x : w) {
    x = wrng.next_in(0.1, 10.0);
    total += x;
  }
  AliasTable t(w);
  constexpr int kDraws = 1000000;
  std::vector<int> counts(w.size(), 0);
  Rng rng(6, RngTag::kTest, 2);
  for (int i = 0; i < kDraws; ++i) ++counts[static_cast<std::size_t>(t.sample(rng))];
  double chi2 = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double expected = kDraws * w[i] / total;
    chi2 += (counts[i] - expected) * (counts[i] - expected) / expected;
  }
  // 99 dof; 99.9th percentile ~ 148.
  EXPECT_LT(chi2, 160.0);
}

TEST(BuildAlias, FlatBuildMatchesOwningWrapper) {
  const std::vector<double> w{3.0, 1.0, 2.0};
  std::vector<double> prob(3);
  std::vector<std::int32_t> alias(3);
  const double total = build_alias(w, prob, alias);
  EXPECT_DOUBLE_EQ(total, 6.0);
  AliasTable t(w);
  Rng a(7, RngTag::kTest, 0);
  Rng b(7, RngTag::kTest, 0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(sample_alias(prob, alias, a), t.sample(b));
  }
}

}  // namespace
}  // namespace parlap
