#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "parallel/for_each.hpp"

namespace parlap {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce) {
  constexpr std::int64_t kN = 1 << 18;
  std::vector<std::int32_t> hits(kN, 0);
  parallel_for(std::int64_t{0}, kN, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
  for (const auto h : hits) ASSERT_EQ(h, 1);
}

TEST(ParallelFor, SerialPathSmallRange) {
  std::vector<int> order;
  parallel_for(0, 10, [&](int i) { order.push_back(i); });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // below grain => sequential in order
}

TEST(ParallelFor, EmptyRange) {
  bool ran = false;
  parallel_for(5, 5, [&](int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForDynamic, CoversRange) {
  constexpr std::int64_t kN = 100000;
  std::atomic<std::int64_t> sum{0};
  parallel_for_dynamic(std::int64_t{0}, kN,
                       [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ParallelReduce, SumLarge) {
  constexpr std::int64_t kN = 1 << 20;
  const std::int64_t total = parallel_reduce(
      std::int64_t{0}, kN, std::int64_t{0},
      [](std::int64_t i) { return i; },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(total, kN * (kN - 1) / 2);
}

TEST(ParallelReduce, MaxSmall) {
  const int result = parallel_reduce(
      0, 100, -1, [](int i) { return (i * 37) % 101; },
      [](int a, int b) { return a > b ? a : b; });
  EXPECT_EQ(result, 100);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  const int result = parallel_reduce(
      0, 0, 42, [](int) { return 0; }, [](int a, int b) { return a + b; });
  EXPECT_EQ(result, 42);
}

TEST(ThreadCount, Positive) { EXPECT_GE(thread_count(), 1); }

TEST(SerialScope, SuppressesParallelism) {
  EXPECT_TRUE(parallelism_allowed());
  {
    SerialScope guard;
    EXPECT_FALSE(parallelism_allowed());
    // A large range must still run — in submission order, proving the
    // serial fallback was taken.
    constexpr std::int64_t kN = 1 << 16;
    std::int64_t expected_next = 0;
    bool ordered = true;
    parallel_for(std::int64_t{0}, kN, [&](std::int64_t i) {
      ordered = ordered && (i == expected_next);
      ++expected_next;
    });
    EXPECT_TRUE(ordered);
    EXPECT_EQ(expected_next, kN);
    {
      SerialScope nested;  // nesting stacks, it does not toggle
      EXPECT_FALSE(parallelism_allowed());
    }
    EXPECT_FALSE(parallelism_allowed());
  }
  EXPECT_TRUE(parallelism_allowed());
}

TEST(SerialScope, NestedOmpRegionFallsBackToSerial) {
  // Inside an OpenMP parallel region every wrapper must refuse to fork a
  // nested team; the serial fallback keeps iteration order.
  std::atomic<int> bad{0};
#pragma omp parallel num_threads(2)
  {
    EXPECT_FALSE(parallelism_allowed());
    std::int64_t expected_next = 0;
    parallel_for(std::int64_t{0}, std::int64_t{1} << 14, [&](std::int64_t i) {
      if (i != expected_next) ++bad;
      ++expected_next;
    });
    const std::int64_t total = parallel_reduce(
        std::int64_t{0}, std::int64_t{1} << 14, std::int64_t{0},
        [](std::int64_t i) { return i; },
        [](std::int64_t a, std::int64_t b) { return a + b; });
    if (total != (std::int64_t{1} << 14) * ((std::int64_t{1} << 14) - 1) / 2) {
      ++bad;
    }
  }
  EXPECT_EQ(bad.load(), 0);
}

TEST(SerialScope, ReduceUnderScopeMatchesParallel) {
  constexpr std::int64_t kN = 1 << 20;
  const auto run = [] {
    return parallel_reduce(
        std::int64_t{0}, kN, std::int64_t{0},
        [](std::int64_t i) { return i % 7; },
        [](std::int64_t a, std::int64_t b) { return a + b; });
  };
  const std::int64_t open = run();
  SerialScope guard;
  EXPECT_EQ(run(), open);
}

}  // namespace
}  // namespace parlap
