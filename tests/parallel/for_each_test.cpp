#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "parallel/for_each.hpp"

namespace parlap {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce) {
  constexpr std::int64_t kN = 1 << 18;
  std::vector<std::int32_t> hits(kN, 0);
  parallel_for(std::int64_t{0}, kN, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
  for (const auto h : hits) ASSERT_EQ(h, 1);
}

TEST(ParallelFor, SerialPathSmallRange) {
  std::vector<int> order;
  parallel_for(0, 10, [&](int i) { order.push_back(i); });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // below grain => sequential in order
}

TEST(ParallelFor, EmptyRange) {
  bool ran = false;
  parallel_for(5, 5, [&](int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForDynamic, CoversRange) {
  constexpr std::int64_t kN = 100000;
  std::atomic<std::int64_t> sum{0};
  parallel_for_dynamic(std::int64_t{0}, kN,
                       [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ParallelReduce, SumLarge) {
  constexpr std::int64_t kN = 1 << 20;
  const std::int64_t total = parallel_reduce(
      std::int64_t{0}, kN, std::int64_t{0},
      [](std::int64_t i) { return i; },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(total, kN * (kN - 1) / 2);
}

TEST(ParallelReduce, MaxSmall) {
  const int result = parallel_reduce(
      0, 100, -1, [](int i) { return (i * 37) % 101; },
      [](int a, int b) { return a > b ? a : b; });
  EXPECT_EQ(result, 100);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  const int result = parallel_reduce(
      0, 0, 42, [](int) { return 0; }, [](int a, int b) { return a + b; });
  EXPECT_EQ(result, 42);
}

TEST(ThreadCount, Positive) { EXPECT_GE(thread_count(), 1); }

}  // namespace
}  // namespace parlap
