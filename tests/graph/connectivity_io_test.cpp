#include <gtest/gtest.h>

#include <sstream>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace parlap {
namespace {

TEST(Connectivity, SingleVertex) {
  const Multigraph g(1);
  EXPECT_TRUE(is_connected(g));
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 1);
}

TEST(Connectivity, EdgelessGraphAllSingletons) {
  const Multigraph g(4);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 4);
  for (Vertex v = 0; v < 4; ++v) EXPECT_EQ(c.label[static_cast<std::size_t>(v)], v);
}

TEST(Connectivity, TwoComponentsLabeledBySmallestVertex) {
  Multigraph g(6);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 4, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(3, 5, 1.0);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 2);
  EXPECT_EQ(c.label[0], 0);
  EXPECT_EQ(c.label[2], 0);
  EXPECT_EQ(c.label[4], 0);
  EXPECT_EQ(c.label[1], 1);
  EXPECT_EQ(c.label[3], 1);
  EXPECT_EQ(c.label[5], 1);
}

TEST(Connectivity, ConnectedGenerators) {
  EXPECT_TRUE(is_connected(make_grid2d(10, 10)));
  EXPECT_TRUE(is_connected(make_random_regular(100, 3, 1)));
  EXPECT_TRUE(is_connected(make_barbell(5, 3)));
}

TEST(GraphIo, RoundTripPreservesEverything) {
  Multigraph g = make_erdos_renyi(40, 100, 5);
  apply_weights(g, WeightModel::uniform(0.1, 9.0), 6);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Multigraph h = read_edge_list(ss);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge_u(e), g.edge_u(e));
    EXPECT_EQ(h.edge_v(e), g.edge_v(e));
    EXPECT_DOUBLE_EQ(h.edge_weight(e), g.edge_weight(e));
  }
}

TEST(GraphIo, HeaderlessDefaultsToUnitWeights) {
  std::stringstream ss("0 1\n1 2\n");
  const Multigraph g = read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 1.0);
}

TEST(GraphIo, CommentsIgnored) {
  std::stringstream ss("# a comment\n0 1 2.5\n# another\n1 2 0.5\n");
  const Multigraph g = read_edge_list(ss);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 2.5);
}

TEST(GraphIo, MalformedHeaderTreatedAsComment) {
  std::stringstream ss("# parlap-graph oops\n0 1 2.0\n");
  const Multigraph g = read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 2);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 2.0);
}

TEST(GraphIo, MalformedLineThrows) {
  std::stringstream ss("nonsense here\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

}  // namespace
}  // namespace parlap
