#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/matrix_market.hpp"
#include "linalg/dense.hpp"

namespace parlap {
namespace {

TEST(MatrixMarket, RoundTrip) {
  Multigraph g = make_erdos_renyi(30, 90, 1);
  apply_weights(g, WeightModel::uniform(0.1, 5.0), 2);
  std::stringstream ss;
  write_matrix_market(ss, g);
  const Multigraph h = read_matrix_market(ss);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  // Same Laplacian (edge orientation may normalize to lower triangle).
  EXPECT_LT(laplacian_dense(h).max_abs_diff(laplacian_dense(g)), 1e-12);
}

TEST(MatrixMarket, ReadsPatternFiles) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 3\n"
      "2 1\n"
      "3 1\n"
      "3 2\n");
  const Multigraph g = read_matrix_market(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 1.0);
}

TEST(MatrixMarket, ReadsLaplacianConvention) {
  // L of a path 0-1-2 with weights 2 and 3.
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% a Laplacian\n"
      "3 3 5\n"
      "1 1 2.0\n"
      "2 1 -2.0\n"
      "2 2 5.0\n"
      "3 2 -3.0\n"
      "3 3 3.0\n");
  const Multigraph g = read_matrix_market(ss, MatrixMarketKind::kLaplacian);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(1), 3.0);
}

TEST(MatrixMarket, SkipsCommentsAndDiagonal) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment line\n"
      "2 2 2\n"
      "1 1 7.0\n"
      "2 1 1.5\n");
  const Multigraph g = read_matrix_market(ss);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 1.5);
}

TEST(MatrixMarket, RejectsMalformed) {
  {
    std::stringstream ss("not a banner\n1 1 0\n");
    EXPECT_THROW((void)read_matrix_market(ss), std::runtime_error);
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real symmetric\n2 3 0\n");
    EXPECT_THROW((void)read_matrix_market(ss), std::runtime_error);  // not square
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix array real general\n2 2\n");
    EXPECT_THROW((void)read_matrix_market(ss), std::runtime_error);  // dense
  }
  {
    // Positive off-diagonal in Laplacian convention.
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 3.0\n");
    EXPECT_THROW((void)read_matrix_market(ss, MatrixMarketKind::kLaplacian),
                 std::runtime_error);
  }
}

TEST(MatrixMarket, DuplicateEntriesBecomeMultiEdges) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "2 1 1.0\n"
      "2 1 2.5\n");
  const Multigraph g = read_matrix_market(ss);
  EXPECT_EQ(g.num_edges(), 2);
  const auto deg = g.weighted_degrees();
  EXPECT_DOUBLE_EQ(deg[0], 3.5);
}

}  // namespace
}  // namespace parlap
