// Generator tests: sizes, degrees, connectivity, determinism, weight
// models. Parameterized across families where the property is shared.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace parlap {
namespace {

TEST(Generators, PathSizes) {
  const Multigraph g = make_path(10);
  EXPECT_EQ(g.num_vertices(), 10);
  EXPECT_EQ(g.num_edges(), 9);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CycleDegrees) {
  const Multigraph g = make_cycle(8);
  EXPECT_EQ(g.num_edges(), 8);
  for (const double d : g.weighted_degrees()) EXPECT_DOUBLE_EQ(d, 2.0);
}

TEST(Generators, Grid2dSizes) {
  const Multigraph g = make_grid2d(4, 6);
  EXPECT_EQ(g.num_vertices(), 24);
  EXPECT_EQ(g.num_edges(), 3 * 6 + 5 * 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Grid3dSizes) {
  const Multigraph g = make_grid3d(3, 4, 5);
  EXPECT_EQ(g.num_vertices(), 60);
  EXPECT_EQ(g.num_edges(), 2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CompleteGraph) {
  const Multigraph g = make_complete(7);
  EXPECT_EQ(g.num_edges(), 21);
  for (const double d : g.weighted_degrees()) EXPECT_DOUBLE_EQ(d, 6.0);
}

TEST(Generators, StarDegrees) {
  const Multigraph g = make_star(9);
  const auto deg = g.weighted_degrees();
  EXPECT_DOUBLE_EQ(deg[0], 8.0);
  for (Vertex v = 1; v < 9; ++v) EXPECT_DOUBLE_EQ(deg[static_cast<std::size_t>(v)], 1.0);
}

TEST(Generators, BinaryTreeIsTree) {
  const Multigraph g = make_binary_tree(31);
  EXPECT_EQ(g.num_edges(), 30);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, BarbellStructure) {
  const Multigraph g = make_barbell(10, 5);
  EXPECT_EQ(g.num_vertices(), 25);
  EXPECT_EQ(g.num_edges(), 2 * 45 + 6);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, ErdosRenyiConnectedBySpine) {
  const Multigraph g = make_erdos_renyi(500, 600, 7);
  EXPECT_EQ(g.num_vertices(), 500);
  EXPECT_EQ(g.num_edges(), 600);
  EXPECT_TRUE(is_connected(g));
  g.validate();
}

TEST(Generators, ErdosRenyiDeterministic) {
  const Multigraph a = make_erdos_renyi(100, 300, 11);
  const Multigraph b = make_erdos_renyi(100, 300, 11);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_u(e), b.edge_u(e));
    EXPECT_EQ(a.edge_v(e), b.edge_v(e));
  }
}

TEST(Generators, ErdosRenyiSeedsDiffer) {
  const Multigraph a = make_erdos_renyi(100, 300, 11);
  const Multigraph b = make_erdos_renyi(100, 300, 12);
  int diff = 0;
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    diff += (a.edge_u(e) != b.edge_u(e) || a.edge_v(e) != b.edge_v(e)) ? 1 : 0;
  }
  EXPECT_GT(diff, 0);
}

class RegularDegreeTest
    : public ::testing::TestWithParam<std::pair<Vertex, int>> {};

TEST_P(RegularDegreeTest, ExactDegrees) {
  const auto [n, d] = GetParam();
  const Multigraph g = make_random_regular(n, d, 13);
  EXPECT_EQ(g.num_edges(), static_cast<EdgeId>(n) * d / 2);
  for (const double deg : g.weighted_degrees()) {
    EXPECT_DOUBLE_EQ(deg, static_cast<double>(d));
  }
  g.validate();
}

INSTANTIATE_TEST_SUITE_P(Degrees, RegularDegreeTest,
                         ::testing::Values(std::pair<Vertex, int>{50, 2},
                                           std::pair<Vertex, int>{100, 3},
                                           std::pair<Vertex, int>{64, 4},
                                           std::pair<Vertex, int>{200, 5},
                                           std::pair<Vertex, int>{128, 8}));

TEST(Generators, RandomRegularOddDegreeNeedsEvenN) {
  EXPECT_THROW(make_random_regular(51, 3, 1), std::runtime_error);
}

TEST(Generators, RmatShape) {
  const Multigraph g = make_rmat(10, 4096, 17);
  EXPECT_EQ(g.num_vertices(), 1024);
  EXPECT_EQ(g.num_edges(), 4096);
  EXPECT_TRUE(is_connected(g));
  g.validate();
}

TEST(Generators, RmatSkewedDegrees) {
  const Multigraph g = make_rmat(12, 8 * 4096, 19);
  const auto deg = g.weighted_degrees();
  double max_deg = 0.0;
  double total = 0.0;
  for (const double d : deg) {
    max_deg = std::max(max_deg, d);
    total += d;
  }
  const double avg = total / static_cast<double>(deg.size());
  EXPECT_GT(max_deg, 8.0 * avg);  // heavy tail
}

TEST(Generators, WattsStrogatzLatticeAtBetaZero) {
  // beta = 0 is the deterministic k-ring: n*k/2 edges, every vertex of
  // degree k, connected.
  const Multigraph g = make_watts_strogatz(100, 6, 0.0, 3);
  EXPECT_EQ(g.num_vertices(), 100);
  EXPECT_EQ(g.num_edges(), 300);
  EXPECT_TRUE(is_connected(g));
  for (const double d : g.weighted_degrees()) EXPECT_DOUBLE_EQ(d, 6.0);
  g.validate();
}

TEST(Generators, WattsStrogatzRewiresSomeEdges) {
  const Multigraph lattice = make_watts_strogatz(500, 4, 0.0, 7);
  const Multigraph rewired = make_watts_strogatz(500, 4, 0.3, 7);
  EXPECT_EQ(rewired.num_edges(), lattice.num_edges());  // count preserved
  EdgeId moved = 0;
  for (EdgeId e = 0; e < rewired.num_edges(); ++e) {
    EXPECT_EQ(rewired.edge_u(e), lattice.edge_u(e));  // near end kept
    if (rewired.edge_v(e) != lattice.edge_v(e)) ++moved;
  }
  // ~30% of 1000 edges rewire; allow a wide deterministic band.
  EXPECT_GT(moved, 150u);
  EXPECT_LT(moved, 450u);
  rewired.validate();
}

TEST(Generators, WattsStrogatzDeterministicPerSeed) {
  const Multigraph a = make_watts_strogatz(200, 6, 0.2, 11);
  const Multigraph b = make_watts_strogatz(200, 6, 0.2, 11);
  const Multigraph c = make_watts_strogatz(200, 6, 0.2, 12);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EdgeId differs_from_c = 0;
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_u(e), b.edge_u(e));
    EXPECT_EQ(a.edge_v(e), b.edge_v(e));
    if (a.edge_v(e) != c.edge_v(e)) ++differs_from_c;
  }
  EXPECT_GT(differs_from_c, 0u);  // the seed actually feeds the rewiring
}

TEST(Generators, WattsStrogatzRejectsBadParameters) {
  EXPECT_THROW(make_watts_strogatz(100, 5, 0.1, 1), std::runtime_error);
  EXPECT_THROW(make_watts_strogatz(100, 0, 0.1, 1), std::runtime_error);
  EXPECT_THROW(make_watts_strogatz(4, 4, 0.1, 1), std::runtime_error);
  EXPECT_THROW(make_watts_strogatz(100, 4, 1.5, 1), std::runtime_error);
}

TEST(WeightModels, UniformRange) {
  Multigraph g = make_cycle(1000);
  apply_weights(g, WeightModel::uniform(2.0, 5.0), 23);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_GE(g.edge_weight(e), 2.0);
    EXPECT_LT(g.edge_weight(e), 5.0);
  }
}

TEST(WeightModels, PowerLawRangeAndSkew) {
  Multigraph g = make_cycle(5000);
  apply_weights(g, WeightModel::power_law(1.0, 1000.0, 2.0), 29);
  double max_w = 0.0;
  double sum = 0.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double w = g.edge_weight(e);
    EXPECT_GE(w, 1.0);
    EXPECT_LE(w, 1000.0);
    max_w = std::max(max_w, w);
    sum += w;
  }
  EXPECT_GT(max_w, 20.0 * sum / static_cast<double>(g.num_edges()));
}

TEST(WeightModels, DeterministicPerSeed) {
  Multigraph a = make_path(100);
  Multigraph b = make_path(100);
  apply_weights(a, WeightModel::uniform(0.0, 1.0), 31);
  apply_weights(b, WeightModel::uniform(0.0, 1.0), 31);
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(a.edge_weight(e), b.edge_weight(e));
  }
}

}  // namespace
}  // namespace parlap
