#include <gtest/gtest.h>

#include "graph/multigraph.hpp"

namespace parlap {
namespace {

TEST(Multigraph, EmptyGraph) {
  Multigraph g(5);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 0.0);
}

TEST(Multigraph, AddEdgeAndQuery) {
  Multigraph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.edge_u(0), 0);
  EXPECT_EQ(g.edge_v(0), 1);
  EXPECT_DOUBLE_EQ(g.edge_weight(1), 3.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 5.0);
}

TEST(Multigraph, ParallelMultiEdgesAllowed) {
  Multigraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 0, 3.0);
  EXPECT_EQ(g.num_edges(), 3);
  const auto deg = g.weighted_degrees();
  EXPECT_DOUBLE_EQ(deg[0], 6.0);
  EXPECT_DOUBLE_EQ(deg[1], 6.0);
}

TEST(Multigraph, RejectsSelfLoop) {
  Multigraph g(2);
  EXPECT_THROW(g.add_edge(1, 1, 1.0), std::runtime_error);
}

TEST(Multigraph, RejectsNonPositiveWeight) {
  Multigraph g(2);
  EXPECT_THROW(g.add_edge(0, 1, 0.0), std::runtime_error);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::runtime_error);
}

TEST(Multigraph, WeightedDegreesLargeParallelPath) {
  // Exercise the parallel accumulation path (> 2^15 edges).
  const Vertex n = 300;
  Multigraph g(n);
  const EdgeId reps = 400;
  for (EdgeId r = 0; r < reps; ++r) {
    for (Vertex i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, 0.5);
  }
  ASSERT_GT(g.num_edges(), EdgeId{1} << 15);
  const auto deg = g.weighted_degrees();
  EXPECT_DOUBLE_EQ(deg[0], 0.5 * static_cast<double>(reps));
  EXPECT_DOUBLE_EQ(deg[1], 1.0 * static_cast<double>(reps));
}

TEST(Multigraph, ValidateDetectsCorruption) {
  Multigraph g(3);
  g.add_edge(0, 1, 1.0);
  g.validate();  // fine
  g.resize_edges(2);
  g.set_edge(1, 0, 2, 1.0);
  g.validate();  // still fine
  // set_edge with DCHECK off could smuggle bad data; emulate via resize
  // leaving a zero-weight slot.
  g.resize_edges(3);
  EXPECT_THROW(g.validate(), std::runtime_error);
}

TEST(Multigraph, ResizeAndSetParallelFill) {
  Multigraph g(10);
  g.resize_edges(9);
  for (EdgeId e = 0; e < 9; ++e) {
    g.set_edge(e, static_cast<Vertex>(e), static_cast<Vertex>(e + 1), 1.0);
  }
  g.validate();
  EXPECT_EQ(g.num_edges(), 9);
}

}  // namespace
}  // namespace parlap
