// CSR conversion tests (Lemma 2.7): totals, symmetry, weighted degrees,
// determinism of adjacency order, and consistency on large graphs where
// the chunked parallel scatter kicks in.
#include <gtest/gtest.h>

#include <map>

#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace parlap {
namespace {

TEST(Csr, TriangleBasics) {
  Multigraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 3.0);
  const CsrGraph csr(g);
  EXPECT_EQ(csr.num_vertices(), 3);
  EXPECT_EQ(csr.num_edges(), 3);
  EXPECT_EQ(csr.degree(0), 2);
  EXPECT_DOUBLE_EQ(csr.weighted_degree(0), 4.0);
  EXPECT_DOUBLE_EQ(csr.weighted_degree(1), 3.0);
  EXPECT_DOUBLE_EQ(csr.weighted_degree(2), 5.0);
}

TEST(Csr, EveryEdgeAppearsTwice) {
  const Multigraph g = make_erdos_renyi(200, 800, 1);
  const CsrGraph csr(g);
  EdgeId total = 0;
  for (Vertex v = 0; v < csr.num_vertices(); ++v) total += csr.degree(v);
  EXPECT_EQ(total, 2 * g.num_edges());
}

TEST(Csr, AdjacencyMatchesEdgeList) {
  const Multigraph g = make_erdos_renyi(50, 300, 2);
  const CsrGraph csr(g);
  // Count (u, v, w) incidences from both representations.
  std::map<std::tuple<Vertex, Vertex, Weight>, int> from_edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ++from_edges[{g.edge_u(e), g.edge_v(e), g.edge_weight(e)}];
    ++from_edges[{g.edge_v(e), g.edge_u(e), g.edge_weight(e)}];
  }
  std::map<std::tuple<Vertex, Vertex, Weight>, int> from_csr;
  for (Vertex v = 0; v < csr.num_vertices(); ++v) {
    const auto nbrs = csr.neighbors(v);
    const auto ws = csr.weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      ++from_csr[{v, nbrs[k], ws[k]}];
    }
  }
  EXPECT_EQ(from_edges, from_csr);
}

TEST(Csr, EdgeIdsRoundTrip) {
  const Multigraph g = make_grid2d(7, 9);
  const CsrGraph csr(g);
  for (Vertex v = 0; v < csr.num_vertices(); ++v) {
    const auto nbrs = csr.neighbors(v);
    const auto eids = csr.edge_ids(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const EdgeId e = eids[k];
      const bool forward = g.edge_u(e) == v && g.edge_v(e) == nbrs[k];
      const bool backward = g.edge_v(e) == v && g.edge_u(e) == nbrs[k];
      EXPECT_TRUE(forward || backward);
    }
  }
}

TEST(Csr, LargeGraphChunkedScatterConsistent) {
  // Big enough that the multi-chunk deterministic scatter is active.
  const Multigraph g = make_erdos_renyi(5000, 400000, 3);
  const CsrGraph csr(g);
  EdgeId total = 0;
  double weight_total = 0.0;
  for (Vertex v = 0; v < csr.num_vertices(); ++v) {
    total += csr.degree(v);
    weight_total += csr.weighted_degree(v);
  }
  EXPECT_EQ(total, 2 * g.num_edges());
  EXPECT_NEAR(weight_total, 2.0 * g.total_weight(), 1e-6);
}

TEST(Csr, AdjacencyOrderFollowsEdgeOrder) {
  // Stable counting sort => incidences appear in edge-list order.
  Multigraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(0, 3, 3.0);
  const CsrGraph csr(g);
  const auto nbrs = csr.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1);
  EXPECT_EQ(nbrs[1], 2);
  EXPECT_EQ(nbrs[2], 3);
}

TEST(Csr, IsolatedVertices) {
  Multigraph g(5);
  g.add_edge(1, 3, 1.0);
  const CsrGraph csr(g);
  EXPECT_EQ(csr.degree(0), 0);
  EXPECT_EQ(csr.degree(2), 0);
  EXPECT_EQ(csr.degree(4), 0);
  EXPECT_DOUBLE_EQ(csr.weighted_degree(0), 0.0);
  EXPECT_TRUE(csr.neighbors(0).empty());
}

}  // namespace
}  // namespace parlap
