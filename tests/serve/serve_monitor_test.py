"""Black-box suite for parlap_top, the live daemon monitor.

argv: <parlap_serve binary> <parlap_top binary>

Drives parlap_top against a live daemon: a --count 1 --plain snapshot
renders the queue/counter/window/cache lines from real stats, the
digest table carries the solves the test just ran, repeated polls
refresh, and the exit-code contract holds (2 on usage errors, 3 when
the first poll cannot reach a daemon).
"""

import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from serve_client import Checker, ServeDaemon, fast_job


def run_top(args, timeout=60.0):
    return subprocess.run(args, capture_output=True, text=True,
                          timeout=timeout)


def test_snapshot(c, serve_bin, top_bin):
    with ServeDaemon(serve_bin, workers=2) as d:
        with d.connect() as cl:
            for i in range(4):
                cl.send(fast_job("t%d" % i, seed=i))
            for _ in range(4):
                cl.recv()

        top = run_top([top_bin, "--socket", d.socket_path,
                       "--count", "1", "--plain"])
        c.check(top.returncode == 0,
                "one-shot snapshot exits 0: %s" % top.stderr)
        out = top.stdout
        c.check(out.startswith("parlap_top"), "header line present")
        c.check("\x1b[" not in out, "--plain suppresses ANSI escapes")
        for token in ("workers 2", "queue 0/", "completed 4",
                      "cache hit rate", "solve (60s)", "solve (life)",
                      "queue (60s)", "p99_ms"):
            c.check(token in out, "snapshot shows %r" % token)
        c.check("solves/s" in out and "shed rate" in out,
                "window throughput line present")

        # The 60s digest row actually carries this test's four solves.
        for line in out.splitlines():
            if line.startswith("solve (60s)"):
                count = line.split()[2]
                c.check(count == "4",
                        "window digest row counts the solves: %r" % line)
                break
        else:
            c.check(False, "no solve (60s) row in:\n%s" % out)

        # Multi-poll mode keeps refreshing (2 polls, short interval).
        multi = run_top([top_bin, "--socket", d.socket_path,
                         "--count", "2", "--interval-ms", "50", "--plain"])
        c.check(multi.returncode == 0, "two-poll run exits 0")
        c.check(multi.stdout.count("parlap_top") == 2,
                "two polls render two headers")

        # TCP target works the same way when the daemon listens there.
    with ServeDaemon(serve_bin, workers=1,
                     extra_args=["--tcp", "0"]) as d:
        port = d.stats()["config"]["tcp_port"]
        top = run_top([top_bin, "--tcp", str(port),
                       "--count", "1", "--plain"])
        c.check(top.returncode == 0,
                "tcp-target snapshot exits 0: %s" % top.stderr)
        c.check("workers 1" in top.stdout, "tcp snapshot shows config")


def test_exit_codes(c, top_bin):
    usage = run_top([top_bin])
    c.check(usage.returncode == 2, "no target is a usage error (rc=%s)"
            % usage.returncode)
    usage = run_top([top_bin, "--socket", "/tmp/x", "--bogus"])
    c.check(usage.returncode == 2, "unknown flag is a usage error")
    dead = run_top([top_bin, "--socket", "/tmp/definitely_not_a_daemon.sock",
                    "--count", "1"])
    c.check(dead.returncode == 3,
            "unreachable daemon on the first poll exits 3 (rc=%s)"
            % dead.returncode)


def main():
    serve_bin, top_bin = sys.argv[1], sys.argv[2]
    c = Checker()
    test_snapshot(c, serve_bin, top_bin)
    test_exit_codes(c, top_bin)
    c.finish("serve_monitor_test")


if __name__ == "__main__":
    main()
