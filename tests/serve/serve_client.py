"""Client library for the parlap_serve black-box suites.

Speaks the newline-delimited JSON protocol of docs/SERVING.md over a
unix-domain or loopback TCP socket, and manages daemon lifecycles for
tests: spawn, wait-until-accepting, SIGTERM, wait-with-timeout.

No third-party dependencies — stdlib only, so the suites run wherever
ctest finds a python3.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time


class ServeClient:
    """One connection to a running daemon."""

    def __init__(self, target, timeout=60.0):
        """target: unix socket path (str) or ("127.0.0.1", port) tuple."""
        if isinstance(target, str):
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.sock.connect(target)
        self._buf = b""

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def send(self, obj):
        """Send one request object (no response read)."""
        self.raw_send(json.dumps(obj).encode() + b"\n")

    def raw_send(self, data):
        """Send raw bytes — fault-injection hook (truncated/garbage lines)."""
        self.sock.sendall(data)

    def recv(self, timeout=60.0):
        """Next response line as a dict; None on EOF, raises on timeout."""
        self.sock.settimeout(timeout)
        while b"\n" not in self._buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self._buf += chunk
        line, self._buf = self._buf.split(b"\n", 1)
        return json.loads(line)

    def recv_eof(self, timeout=30.0):
        """True if the server closes the connection without another line."""
        try:
            return self.recv(timeout) is None
        except socket.timeout:
            return False

    def request(self, obj, timeout=60.0):
        """send + recv. Only valid when no other responses are pending."""
        self.send(obj)
        return self.recv(timeout)


class ServeDaemon:
    """Context manager spawning a parlap_serve process for one test."""

    def __init__(self, binary, workers=2, extra_args=(), socket_dir=None):
        self.binary = binary
        # Socket paths must fit sockaddr_un; keep them short and unique.
        self._dir = tempfile.mkdtemp(prefix="pls_", dir=socket_dir or "/tmp")
        self.socket_path = os.path.join(self._dir, "s")
        self.args = [
            binary,
            "--socket", self.socket_path,
            "--workers", str(workers),
            "--cache-budget", "1000000",
        ] + list(extra_args)
        self.proc = None

    def __enter__(self):
        self.proc = subprocess.Popen(
            self.args, stderr=subprocess.PIPE, text=True)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    "daemon exited during startup (rc=%d): %s"
                    % (self.proc.returncode, self.proc.stderr.read()))
            try:
                ServeClient(self.socket_path, timeout=1.0).close()
                return self
            except OSError:
                time.sleep(0.05)
        raise RuntimeError("daemon never started accepting connections")

    def __exit__(self, *exc):
        if self.proc and self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        try:
            os.rmdir(self._dir)
        except OSError:
            pass

    def connect(self, timeout=60.0):
        return ServeClient(self.socket_path, timeout=timeout)

    def stats(self):
        with self.connect() as c:
            return c.request({"type": "stats"})

    def sigterm(self):
        self.proc.send_signal(signal.SIGTERM)

    def wait(self, timeout=120.0):
        """Waits for exit; returns the return code."""
        return self.proc.wait(timeout=timeout)


class Checker:
    """Accumulates named pass/fail checks; exit(1) if any failed."""

    def __init__(self):
        self.failures = []
        self.passed = 0

    def check(self, cond, what):
        if cond:
            self.passed += 1
        else:
            self.failures.append(what)
            print("FAIL: %s" % what, file=sys.stderr)
        return cond

    def finish(self, name):
        if self.failures:
            print("%s: %d check(s) FAILED, %d passed"
                  % (name, len(self.failures), self.passed), file=sys.stderr)
            sys.exit(1)
        print("%s: all %d checks passed" % (name, self.passed))
        sys.exit(0)


def slow_job(job_id, seed, n=48, eps=1e-10):
    """A solve request distinct per seed (cache miss) and slow enough to
    keep workers busy while a test floods the queue."""
    return {
        "type": "solve",
        "id": job_id,
        "graph": "grid2d:%d,%d" % (n, n),
        "method": "parlap",
        "eps": eps,
        "seed": seed,
        "weights": "uniform:1,%d" % (2 + seed % 7),
    }


def fast_job(job_id, seed=7, n=12, eps=1e-6):
    """A small cache-friendly solve request."""
    return {
        "type": "solve",
        "id": job_id,
        "graph": "grid2d:%d,%d" % (n, n),
        "method": "parlap",
        "eps": eps,
        "seed": seed,
    }
