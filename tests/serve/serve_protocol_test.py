"""Black-box protocol suite for parlap_serve.

argv: <parlap_serve binary> <parlap_cli binary> <scripts dir>

Covers the serving contract of docs/SERVING.md end to end against the
real binary: request/response framing, streamed per-job results,
concurrent clients with a mixed workload, round-robin fairness, the
telemetry plane (unique request ids with per-phase timings, rolling
window stats reconciling with client-observed counts, and a Prometheus
/metrics scrape validated by scripts/check_exposition.py), and the
determinism acceptance property — the same job set run through
`parlap_cli batch` and through concurrent serve clients (shuffled
arrival order, several workers) yields bit-identical solution hashes.
"""

import json
import os
import random
import re
import socket
import subprocess
import sys
import tempfile
import threading

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from serve_client import Checker, ServeClient, ServeDaemon, fast_job, slow_job

HASH_RE = re.compile(r"^[0-9a-f]{16}$")


def test_basics(c, binary):
    with ServeDaemon(binary, workers=2) as d:
        with d.connect() as cl:
            pong = cl.request({"type": "ping"})
            c.check(pong.get("type") == "pong", "ping answered with pong")

            r = cl.request(fast_job("one"))
            c.check(r.get("status") == "ok", "solve status ok: %r" % r)
            c.check(r.get("id") == "one", "result carries the request id")
            c.check(r.get("converged") is True, "solve converged")
            c.check(HASH_RE.match(r.get("solution_hash", "")),
                    "solution_hash is 16 hex chars")
            for key in ("iterations", "relative_residual", "solve_seconds",
                        "wall_seconds", "queue_seconds", "cache_hit"):
                c.check(key in r, "result has %s" % key)

            st = cl.request({"type": "stats"})
            c.check(st.get("status") == "ok", "stats status ok")
            c.check(st.get("queue_depth") == 0, "stats queue_depth settles to 0")
            for key in ("p50", "p95", "p99", "count", "mean"):
                c.check(key in st.get("solve_seconds", {}),
                        "stats solve_seconds has %s" % key)
                c.check(key in st.get("queue_wait_seconds", {}),
                        "stats queue_wait_seconds has %s" % key)
            c.check("hit_rate" in st.get("cache", {}),
                    "stats cache has hit_rate")
            c.check(st["counters"]["completed"] >= 1,
                    "stats counters count the solve")


def test_streaming(c, binary):
    """Pipelined requests stream results back as they complete."""
    with ServeDaemon(binary, workers=2) as d:
        with d.connect() as cl:
            n = 6
            for i in range(n):
                cl.send(fast_job("s%d" % i, seed=i))
            got = {}
            for _ in range(n):
                r = cl.recv()
                got[r["id"]] = r
            c.check(sorted(got) == ["s%d" % i for i in range(n)],
                    "all pipelined jobs answered exactly once")
            c.check(all(r["status"] == "ok" for r in got.values()),
                    "all pipelined jobs succeeded")


def test_concurrent_mixed(c, binary):
    """>= 4 concurrent clients, mixed workload, per-client bookkeeping."""
    clients = 5
    per_client = 4
    failures = []

    def client_main(k):
        try:
            with d.connect() as cl:
                sent = []
                for j in range(per_client):
                    jid = "c%d_j%d" % (k, j)
                    if j == per_client - 1:
                        # One intentionally failing job per client: the
                        # engine reports it as a structured error result.
                        req = fast_job(jid)
                        req["method"] = "no-such-method"
                    elif j % 2 == 0:
                        req = fast_job(jid, seed=7)  # shared -> cache hits
                    else:
                        req = slow_job(jid, seed=k, n=24, eps=1e-6)
                    cl.send(req)
                    sent.append(jid)
                got = {}
                for _ in sent:
                    r = cl.recv()
                    got[r["id"]] = r
                if sorted(got) != sorted(sent):
                    failures.append("client %d: ids %s != %s"
                                    % (k, sorted(got), sorted(sent)))
                bad = sent[-1]
                if got[bad]["status"] != "error":
                    failures.append("client %d: bad method not an error" % k)
                for jid in sent[:-1]:
                    if got[jid]["status"] != "ok":
                        failures.append("client %d: %s not ok: %r"
                                        % (k, jid, got[jid]))
        except Exception as e:  # noqa: BLE001 - collected for the report
            failures.append("client %d: %r" % (k, e))

    with ServeDaemon(binary, workers=3) as d:
        threads = [threading.Thread(target=client_main, args=(k,))
                   for k in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        st = d.stats()
    c.check(not failures, "concurrent mixed workload: %s" % failures[:3])
    c.check(st["counters"]["completed"] >= clients * per_client,
            "stats counted every completed job")


def test_fairness(c, binary):
    """A one-job client is not stuck behind a flooding client."""
    with ServeDaemon(binary, workers=1) as d:
        flood = d.connect()
        n_flood = 10
        for i in range(n_flood):
            flood.send(slow_job("flood%d" % i, seed=i))
        # Wait until the backlog is real.
        import time
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if d.stats()["queue_depth"] >= n_flood - 2:
                break
            time.sleep(0.05)
        with d.connect() as quick:
            quick.send(fast_job("quick"))
            r = quick.recv(timeout=120.0)
            c.check(r["id"] == "quick" and r["status"] == "ok",
                    "quick client got its result")
            depth_after = d.stats()["queue_depth"]
            c.check(depth_after >= 1,
                    "round-robin served the quick client ahead of the "
                    "flood backlog (depth after: %d)" % depth_after)
        for _ in range(n_flood):
            r = flood.recv(timeout=300.0)
            c.check(r["status"] == "ok", "flood job %s ok" % r.get("id"))
        flood.close()


def test_request_ids_and_window(c, binary):
    """Every response carries a unique admission-minted request id with
    a timing breakdown, and the last-60s window stats reconcile with
    what this client observed."""
    with ServeDaemon(binary, workers=2) as d:
        with d.connect() as cl:
            n = 5
            for i in range(n):
                cl.send(fast_job("rid%d" % i, seed=i))
            rids = []
            for _ in range(n):
                r = cl.recv()
                c.check(r.get("status") == "ok", "rid job ok: %r" % r)
                rid = r.get("request_id")
                c.check(isinstance(rid, int) and rid > 0,
                        "result carries a positive request_id: %r" % rid)
                rids.append(rid)
                t = r.get("timings", {})
                for key in ("queue_wait_ms", "build_ms", "solve_ms"):
                    c.check(isinstance(t.get(key), (int, float))
                            and t[key] >= 0,
                            "timings.%s is a non-negative number: %r"
                            % (key, t.get(key)))
                c.check(t.get("cache") in ("hit", "miss"),
                        "timings.cache is hit|miss: %r" % t.get("cache"))
            c.check(len(set(rids)) == n,
                    "request ids are unique: %r" % rids)

            # A shed/rejected answer is correlatable the same way.
            st = cl.request({"type": "stats"})
            w = st.get("window", {})
            c.check(w.get("window_seconds") == 60,
                    "window covers 60s: %r" % w.get("window_seconds"))
            # Run began seconds ago, so everything is inside the window.
            c.check(w.get("completed") == n,
                    "window completed (%r) reconciles with the %d solves "
                    "this client saw" % (w.get("completed"), n))
            c.check(w.get("shed") == 0, "nothing shed in this run")
            c.check(w.get("solve_seconds", {}).get("count") == n,
                    "window solve digest counts every solve")
            c.check(w.get("solve_seconds", {}).get("p99", 0) > 0,
                    "window p99 is a real measurement")
            c.check(st["solve_seconds"]["count"] == n,
                    "lifetime digest agrees with the window this early")


def http_get(port, target, payload_limit=4 << 20):
    """Raw HTTP/1.1 GET against the daemon's TCP listener; returns
    (status_line, headers dict, body bytes)."""
    s = socket.create_connection(("127.0.0.1", port), timeout=30.0)
    try:
        s.sendall(("GET %s HTTP/1.1\r\nHost: localhost\r\n"
                   "Connection: close\r\n\r\n" % target).encode())
        data = b""
        while len(data) < payload_limit:
            chunk = s.recv(65536)
            if not chunk:
                break
            data += chunk
    finally:
        s.close()
    head, _, body = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return lines[0], headers, body


def test_metrics_exposition(c, binary, scripts_dir):
    """GET /metrics during live traffic is a valid Prometheus scrape,
    and the TCP port comes from the stats config echo — not a flag the
    test hard-codes."""
    with ServeDaemon(binary, workers=2, extra_args=["--tcp", "0"]) as d:
        with d.connect() as cl:
            for i in range(3):
                cl.send(fast_job("m%d" % i, seed=i))
            for _ in range(3):
                cl.recv()

        port = d.stats()["config"]["tcp_port"]
        c.check(isinstance(port, int) and port > 0,
                "stats config echoes the bound tcp port: %r" % port)

        status, headers, body = http_get(port, "/metrics")
        c.check(status.startswith("HTTP/1.1 200"),
                "GET /metrics is 200: %r" % status)
        c.check(headers.get("content-type", "").startswith(
                    "text/plain; version=0.0.4"),
                "scrape content type: %r" % headers.get("content-type"))
        c.check(headers.get("content-length") == str(len(body)),
                "content-length matches the body")

        check = subprocess.run(
            [sys.executable,
             os.path.join(scripts_dir, "check_exposition.py"), "-"],
            input=body.decode(), capture_output=True, text=True)
        c.check(check.returncode == 0,
                "check_exposition.py accepts the scrape: %s%s"
                % (check.stdout, check.stderr))
        c.check(b"parlap_serve_completed_total 3" in body,
                "scrape counts the three completed solves")

        # /stats over HTTP and the JSON metrics verb serve the same data.
        status, headers, stats_body = http_get(port, "/stats")
        c.check(status.startswith("HTTP/1.1 200"), "GET /stats is 200")
        c.check(json.loads(stats_body)["counters"]["completed"] == 3,
                "HTTP stats agree with the JSON protocol")
        with d.connect() as cl:
            m = cl.request({"type": "metrics"})
            c.check(m.get("status") == "ok"
                    and "parlap_serve_requests_total" in m.get("text", ""),
                    "metrics verb returns the exposition inline")

        status, _, body404 = http_get(port, "/nope")
        c.check(status.startswith("HTTP/1.1 404"),
                "unknown target is a 404: %r" % status)


def test_determinism_vs_batch(c, serve_bin, cli_bin):
    """Same jobs via batch CLI and via concurrent serve clients give
    bit-identical solution hashes, any worker count / arrival order."""
    jobs = []
    for i in range(3):
        jobs.append({"id": "g%d" % i, "graph": "grid2d:16,16",
                     "method": "parlap", "eps": 1e-7, "seed": i,
                     "rhs": "random"})
    jobs.append({"id": "ws", "graph": "ws:150,4,0.2", "method": "parlap",
                 "eps": 1e-7, "seed": 11})
    jobs.append({"id": "cg", "graph": "gnm:120,480", "method": "cg",
                 "eps": 1e-7, "seed": 3})
    jobs.append({"id": "dem", "graph": "grid2d:16,16", "method": "parlap",
                 "eps": 1e-7, "seed": 5, "rhs": "demand:0,100"})

    with tempfile.TemporaryDirectory(prefix="pls_det_") as tmp:
        jobs_path = os.path.join(tmp, "jobs.jsonl")
        json_path = os.path.join(tmp, "batch.json")
        with open(jobs_path, "w") as f:
            for j in jobs:
                f.write(json.dumps(j) + "\n")
        subprocess.run(
            [cli_bin, "batch", "--jobs", jobs_path, "--workers", "2",
             "--cache-budget", "1000000", "--json", json_path],
            check=True, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        with open(json_path) as f:
            batch = json.load(f)
    batch_hashes = {j["id"]: j["solution_hash"] for j in batch["jobs"]}
    c.check(len(batch_hashes) == len(jobs), "batch solved every job")

    serve_hashes = {}
    lock = threading.Lock()

    def submit(my_jobs):
        with d.connect() as cl:
            for j in my_jobs:
                req = dict(j)
                req["type"] = "solve"
                cl.send(req)
            for _ in my_jobs:
                r = cl.recv(timeout=300.0)
                with lock:
                    serve_hashes[r["id"]] = r.get("solution_hash")

    with ServeDaemon(serve_bin, workers=3) as d:
        shuffled = list(jobs)
        random.Random(0xC0FFEE).shuffle(shuffled)
        thirds = [shuffled[0::3], shuffled[1::3], shuffled[2::3]]
        threads = [threading.Thread(target=submit, args=(part,))
                   for part in thirds]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    c.check(serve_hashes == batch_hashes,
            "serve hashes match batch hashes: %r vs %r"
            % (serve_hashes, batch_hashes))


def main():
    serve_bin, cli_bin, scripts_dir = sys.argv[1], sys.argv[2], sys.argv[3]
    c = Checker()
    test_basics(c, serve_bin)
    test_streaming(c, serve_bin)
    test_concurrent_mixed(c, serve_bin)
    test_fairness(c, serve_bin)
    test_request_ids_and_window(c, serve_bin)
    test_metrics_exposition(c, serve_bin, scripts_dir)
    test_determinism_vs_batch(c, serve_bin, cli_bin)
    c.finish("serve_protocol_test")


if __name__ == "__main__":
    main()
