"""Overload/backpressure suite for parlap_serve.

argv: <parlap_serve binary>

Floods the daemon far past its admission limit with slow solves and
checks the shed-load contract: overloaded responses come back promptly
(they never wait behind the solve backlog), carry the configured
retry_after_ms, every ADMITTED job still completes with a real result,
and the daemon's own stats reconcile with what the clients observed —
admitted + shed == sent, completed == admitted, p99 solve latency is a
real measurement.
"""

import os
import sys
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from serve_client import Checker, ServeDaemon, fast_job, slow_job

QUEUE_LIMIT = 6


def flood_client(d, k, n_jobs, out, lock):
    shed, ok, err = 0, 0, 0
    max_shed_latency = 0.0
    with d.connect() as cl:
        pending = 0
        for i in range(n_jobs):
            t0 = time.monotonic()
            cl.send(slow_job("f%d_%d" % (k, i), seed=k * 100 + i))
            pending += 1
            # Read whatever has streamed back so far without blocking
            # the flood: a shed answer must arrive fast even though
            # solves are slow.
            cl.sock.settimeout(0.0)
            try:
                while True:
                    r = cl.recv(timeout=0.0)
                    pending -= 1
                    if r["status"] == "overloaded":
                        shed += 1
                        max_shed_latency = max(
                            max_shed_latency, time.monotonic() - t0)
                    elif r["status"] == "ok":
                        ok += 1
                    else:
                        err += 1
            except (BlockingIOError, TimeoutError):
                pass
        while pending > 0:
            r = cl.recv(timeout=600.0)
            pending -= 1
            if r["status"] == "overloaded":
                shed += 1
            elif r["status"] == "ok":
                ok += 1
            else:
                err += 1
    with lock:
        out.append({"shed": shed, "ok": ok, "err": err,
                    "max_shed_latency": max_shed_latency})


def main():
    binary = sys.argv[1]
    c = Checker()
    clients, per_client = 3, 14
    results, lock = [], threading.Lock()
    with ServeDaemon(binary, workers=1,
                     extra_args=["--queue-limit", str(QUEUE_LIMIT),
                                 "--retry-after-ms", "55"]) as d:
        threads = [threading.Thread(target=flood_client,
                                    args=(d, k, per_client, results, lock))
                   for k in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        st = d.stats()
        total = clients * per_client
        shed = sum(r["shed"] for r in results)
        ok = sum(r["ok"] for r in results)
        err = sum(r["err"] for r in results)
        c.check(err == 0, "no job failed outright (%d errors)" % err)
        c.check(ok + shed == total,
                "every request answered exactly once (%d ok + %d shed != %d)"
                % (ok, shed, total))
        c.check(shed > 0,
                "flooding %d slow jobs past a queue limit of %d shed some"
                % (total, QUEUE_LIMIT))
        c.check(ok > 0, "some jobs were admitted and completed")

        # The daemon echoes its deployed limits in-band — assert against
        # the echo instead of re-hard-coding the launch flags here.
        cfg = st["config"]
        c.check(cfg["queue_limit"] == QUEUE_LIMIT,
                "config echo reports the queue limit (%r)"
                % cfg.get("queue_limit"))
        c.check(cfg["retry_after_ms"] == 55,
                "config echo reports retry_after_ms (%r)"
                % cfg.get("retry_after_ms"))
        c.check(cfg["workers"] == 1,
                "config echo reports the worker count (%r)"
                % cfg.get("workers"))

        # Server-side accounting reconciles with the client view.
        cs = st["counters"]
        c.check(cs["shed"] == shed,
                "stats shed (%d) == client-observed shed (%d)"
                % (cs["shed"], shed))
        c.check(cs["admitted"] == ok,
                "stats admitted (%d) == client-observed completions (%d)"
                % (cs["admitted"], ok))
        c.check(cs["completed"] == ok,
                "every admitted job completed (%d vs %d)"
                % (cs["completed"], ok))
        c.check(st["queue_depth"] == 0 and st["in_flight"] == 0,
                "queue empty after the flood")
        c.check(st["solve_seconds"]["count"] == ok,
                "p99 digest counts every completed solve")
        c.check(st["solve_seconds"]["p99"] > 0.0,
                "p99 solve latency is a real measurement")
        c.check(st["queue_wait_seconds"]["p99"] > 0.0,
                "queue-wait p99 recorded under backlog")

        # Shed responses overtook the solve backlog: with a 1-worker
        # daemon chewing slow jobs, waiting for a solve slot would take
        # whole seconds; the shed answer must arrive in well under one.
        worst = max(r["max_shed_latency"] for r in results)
        c.check(worst < 2.0,
                "slowest shed answer took %.3fs (must not queue behind "
                "solves)" % worst)
    c.finish("serve_overload_test")


if __name__ == "__main__":
    main()
