"""Graceful-drain + trace suite for parlap_serve.

argv: <parlap_serve binary> <scripts dir>

SIGTERM mid-burst must behave like a polite landlord: every job already
admitted (queued or in flight) finishes and its result line is flushed,
NEW solve requests are rejected with a structured response, and the
process exits 0. The daemon's --trace-out file must then pass
scripts/check_trace.py with the serve.* span categories present and a
request_id on every serve-cat span (the drain span excepted), and its
--metrics-out snapshot must be a parseable JSON registry dump whose
counts reconcile with the burst.
"""

import json
import os
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from serve_client import Checker, ServeDaemon, fast_job, slow_job


def test_sigterm_mid_burst(c, binary, trace_path, metrics_path):
    with ServeDaemon(binary, workers=2,
                     extra_args=["--trace-out", trace_path,
                                 "--metrics-out", metrics_path]) as d:
        with d.connect() as cl:
            n = 8
            for i in range(n):
                # Distinct seeds/weights -> eight separate factorizations:
                # the burst outlives the drain handshake by a wide margin.
                cl.send(slow_job("burst%d" % i, seed=i, n=64))
            # Let the daemon admit the burst, then pull the plug.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if d.stats()["counters"]["admitted"] >= n:
                    break
                time.sleep(0.02)
            d.sigterm()
            # Drain starts by closing the listeners: poll until a fresh
            # connect is refused, so the probe below deterministically
            # lands on a draining server.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    d.connect(timeout=1.0).close()
                    time.sleep(0.01)
                except OSError:
                    break

            # New work is rejected while the burst drains...
            cl.send(fast_job("late"))
            # ...and every admitted job still completes.
            got = {}
            for _ in range(n + 1):
                r = cl.recv(timeout=300.0)
                got[r["id"]] = r
            burst_ok = ["burst%d" % i for i in range(n)
                        if got.get("burst%d" % i, {}).get("status") == "ok"]
            c.check(len(burst_ok) == n,
                    "all %d in-flight/queued jobs completed through the "
                    "drain (got %d)" % (n, len(burst_ok)))
            c.check(got.get("late", {}).get("status") == "rejected",
                    "post-SIGTERM solve rejected: %r" % got.get("late"))
            c.check(cl.recv_eof(timeout=60.0),
                    "server closed the connection after flushing")
        rc = d.wait(timeout=120.0)
        c.check(rc == 0, "daemon exited 0 after graceful drain (rc=%s)" % rc)


def test_shutdown_request(c, binary):
    """The in-band {"type":"shutdown"} request drains the same way."""
    with ServeDaemon(binary, workers=1) as d:
        with d.connect() as cl:
            cl.send(fast_job("pre"))
            cl.send({"type": "shutdown"})
            got = [cl.recv(timeout=120.0) for _ in range(2)]
            by_type = {r["type"]: r for r in got}
            c.check(by_type.get("result", {}).get("status") == "ok",
                    "job admitted before shutdown completed")
            c.check(by_type.get("shutdown", {}).get("status") == "ok",
                    "shutdown request acknowledged")
        rc = d.wait(timeout=120.0)
        c.check(rc == 0, "daemon exited 0 after shutdown request (rc=%s)" % rc)


def test_trace_file(c, trace_path, scripts_dir):
    c.check(os.path.exists(trace_path), "daemon wrote the trace file")
    check = subprocess.run(
        [sys.executable, os.path.join(scripts_dir, "check_trace.py"),
         trace_path, "--require-cats", "serve", "--min-events", "8",
         "--require-request-ids", "serve"],
        capture_output=True, text=True)
    c.check(check.returncode == 0,
            "check_trace.py accepts the serve trace (request ids on "
            "every serve span): %s%s" % (check.stdout, check.stderr))
    with open(trace_path) as f:
        blob = f.read()
    for span in ("serve.request", "serve.solve", "serve.drain"):
        c.check(span in blob, "trace contains %s spans" % span)


def test_metrics_snapshot(c, metrics_path, n_burst):
    """The post-drain --metrics-out snapshot is quiescent and exact."""
    c.check(os.path.exists(metrics_path), "daemon wrote the metrics file")
    try:
        with open(metrics_path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        c.check(False, "metrics snapshot parses as JSON: %s" % e)
        return
    c.check(doc.get("schema") == "parlap-metrics-v1",
            "snapshot schema tag: %r" % doc.get("schema"))
    by_name = {m["name"]: m for m in doc.get("metrics", [])}
    completed = by_name.get("parlap.serve.completed", {})
    c.check(completed.get("value") == n_burst,
            "snapshot completed (%r) == %d admitted burst jobs"
            % (completed.get("value"), n_burst))
    solve = by_name.get("parlap.serve.solve_seconds", {})
    c.check(solve.get("kind") == "histogram"
            and solve.get("count") == n_burst and solve.get("p99", 0) > 0,
            "snapshot solve histogram counts the burst: %r" % solve)
    c.check(by_name.get("parlap.serve.rejected", {}).get("value") == 1,
            "snapshot counts the one post-SIGTERM rejection")


def main():
    binary, scripts_dir = sys.argv[1], sys.argv[2]
    c = Checker()
    with tempfile.TemporaryDirectory(prefix="pls_drain_") as tmp:
        trace_path = os.path.join(tmp, "serve_trace.json")
        metrics_path = os.path.join(tmp, "serve_metrics.json")
        test_sigterm_mid_burst(c, binary, trace_path, metrics_path)
        test_trace_file(c, trace_path, scripts_dir)
        test_metrics_snapshot(c, metrics_path, n_burst=8)
    test_shutdown_request(c, binary)
    c.finish("serve_drain_test")


if __name__ == "__main__":
    main()
