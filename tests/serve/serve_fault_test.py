"""Fault-injection suite for parlap_serve.

argv: <parlap_serve binary>

Hostile-client behaviors the daemon must absorb without crashing,
hanging, or leaking admission-queue slots: malformed JSON, schema
violations, oversized lines, truncated lines followed by disconnects,
disconnects with work still queued, and silent clients against an idle
timeout. After every abuse the daemon must still answer a well-formed
request, and its queue accounting must return to zero. CI also runs
this suite against the asan build.
"""

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from serve_client import Checker, ServeDaemon, fast_job, slow_job


def wait_for_quiet(d, timeout=60.0):
    """Polls stats until the queue is empty; returns the final stats."""
    deadline = time.monotonic() + timeout
    st = d.stats()
    while time.monotonic() < deadline:
        if st["queue_depth"] == 0 and st["in_flight"] == 0:
            return st
        time.sleep(0.05)
        st = d.stats()
    return st


def test_malformed(c, binary):
    with ServeDaemon(binary, workers=2) as d:
        with d.connect() as cl:
            for garbage in (b"{not json\n", b"[1,2,3]\n", b'"a string"\n',
                            b'{"type":42}\n', b"\x00\xff\xfe garbage\n"):
                cl.raw_send(garbage)
                r = cl.recv()
                c.check(r is not None and r.get("status") == "error",
                        "garbage %r answered with a structured error: %r"
                        % (garbage[:20], r))
            # Schema violations: parseable JSON, invalid job.
            for bad in ({"type": "solve", "id": "x"},          # no graph
                        {"type": "solve", "graph": "grid2d:4",
                         "eps": 5.0},                          # eps range
                        {"type": "solve", "graph": "grid2d:4",
                         "bogus_field": 1},                    # unknown key
                        {"type": "wibble"}):                   # unknown type
                r = cl.request(bad)
                c.check(r.get("status") == "error",
                        "invalid request %r rejected structurally: %r"
                        % (bad, r))
            # The session survived all of it.
            r = cl.request(fast_job("after"))
            c.check(r.get("status") == "ok",
                    "session still solves after malformed traffic")
        c.check(d.stats()["counters"]["errors"] >= 9,
                "error counter saw the malformed traffic")


def test_oversized_line(c, binary):
    with ServeDaemon(binary, workers=1,
                     extra_args=["--max-line-bytes", "4096"]) as d:
        with d.connect() as cl:
            big = b'{"type":"solve","graph":"' + b"x" * 8192 + b'"}\n'
            cl.raw_send(big)
            r = cl.recv()
            c.check(r is not None and "exceeds" in r.get("error", ""),
                    "oversized line answered with a limit error: %r" % r)
            r = cl.request(fast_job("after_big"))
            c.check(r.get("status") == "ok",
                    "session usable after an oversized line")


def test_truncated_then_disconnect(c, binary):
    with ServeDaemon(binary, workers=1) as d:
        # Half a request, no newline, then vanish.
        cl = d.connect()
        cl.raw_send(b'{"type":"solve","graph":"grid2d')
        cl.close()
        # Same, mid-flood: some complete requests, then a truncated one.
        cl = d.connect()
        for i in range(4):
            cl.send(slow_job("t%d" % i, seed=i))
        cl.raw_send(b'{"type":"solve","gra')
        cl.close()
        st = wait_for_quiet(d)
        c.check(st["queue_depth"] == 0 and st["in_flight"] == 0,
                "queue slots reclaimed after disconnects: %r"
                % {k: st[k] for k in ("queue_depth", "in_flight")})
        with d.connect() as probe:
            r = probe.request(fast_job("alive"))
            c.check(r.get("status") == "ok",
                    "daemon alive after truncated-line disconnects")


def test_disconnect_with_queued_work(c, binary):
    with ServeDaemon(binary, workers=1) as d:
        cl = d.connect()
        for i in range(8):
            cl.send(slow_job("q%d" % i, seed=10 + i))
        # Give the daemon a moment to admit them, then vanish.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if d.stats()["counters"]["admitted"] >= 8:
                break
            time.sleep(0.02)
        cl.close()
        st = wait_for_quiet(d, timeout=120.0)
        c.check(st["queue_depth"] == 0,
                "queued jobs of a dead client purged (depth %d)"
                % st["queue_depth"])
        c.check(st["queued_bytes"] == 0,
                "queued bytes refunded (got %d)" % st["queued_bytes"])
        with d.connect() as probe:
            r = probe.request(fast_job("alive2"))
            c.check(r.get("status") == "ok",
                    "daemon solves for new clients after the purge")


def test_idle_timeout(c, binary):
    with ServeDaemon(binary, workers=1,
                     extra_args=["--idle-timeout-ms", "300"]) as d:
        silent = d.connect()
        # Never writes anything. The daemon must reap it...
        c.check(silent.recv_eof(timeout=30.0),
                "silent client reaped by the idle timeout")
        # ...but never reap a session with work in flight or recent talk.
        with d.connect() as busy:
            for _ in range(6):
                r = busy.request(fast_job("tick"), timeout=30.0)
                c.check(r.get("status") == "ok", "active session not reaped")
                time.sleep(0.15)
        st = d.stats()
        c.check(st["counters"]["idle_reaped"] >= 1,
                "idle_reaped counter incremented")


def main():
    binary = sys.argv[1]
    c = Checker()
    test_malformed(c, binary)
    test_oversized_line(c, binary)
    test_truncated_then_disconnect(c, binary)
    test_disconnect_with_queued_work(c, binary)
    test_idle_timeout(c, binary)
    c.finish("serve_fault_test")


if __name__ == "__main__":
    main()
