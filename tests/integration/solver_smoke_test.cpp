// End-to-end smoke tests: the full Theorem 1.1 pipeline on small graphs,
// verified against the dense pseudo-inverse oracle in the paper's L-norm.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dense_direct.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "linalg/laplacian_op.hpp"
#include "support/rng.hpp"

namespace parlap {
namespace {

/// ||x - x*||_L / ||x*||_L with x* = L^+ b computed densely.
double relative_l_norm_error(const Multigraph& g, std::span<const double> x,
                             std::span<const double> b) {
  const DenseDirectSolver oracle(g);
  Vector x_star(x.size());
  oracle.solve(b, x_star);
  const LaplacianOperator op(g);
  Vector diff(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) diff[i] = x[i] - x_star[i];
  const double err = op.laplacian_norm(diff);
  const double ref = op.laplacian_norm(x_star);
  return ref > 0.0 ? err / ref : err;
}

Vector random_rhs(Vertex n, std::uint64_t seed) {
  Vector b(static_cast<std::size_t>(n));
  Rng rng(seed, RngTag::kTest, 7);
  for (auto& v : b) v = rng.next_in(-1.0, 1.0);
  project_out_ones(b);
  return b;
}

TEST(SolverSmoke, Grid2dSolvesToEps) {
  const Multigraph g = make_grid2d(16, 16);
  LaplacianSolver solver(g);
  const Vector b = random_rhs(g.num_vertices(), 1);
  Vector x(b.size(), 0.0);
  const SolveStats stats = solver.solve(b, x, 1e-8);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(relative_l_norm_error(g, x, b), 1e-6);
}

TEST(SolverSmoke, WeightedRandomRegular) {
  Multigraph g = make_random_regular(300, 4, /*seed=*/3);
  apply_weights(g, WeightModel::power_law(0.01, 100.0, 2.5), 5);
  LaplacianSolver solver(g);
  const Vector b = random_rhs(g.num_vertices(), 2);
  Vector x(b.size(), 0.0);
  const SolveStats stats = solver.solve(b, x, 1e-8);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(relative_l_norm_error(g, x, b), 1e-6);
}

TEST(SolverSmoke, BarbellLowConductance) {
  const Multigraph g = make_barbell(60, 40);
  LaplacianSolver solver(g);
  const Vector b = random_rhs(g.num_vertices(), 3);
  Vector x(b.size(), 0.0);
  const SolveStats stats = solver.solve(b, x, 1e-8);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(relative_l_norm_error(g, x, b), 1e-6);
}

TEST(SolverSmoke, DisconnectedInputSolvedPerComponent) {
  // Two grids with no connection; solver must split and solve blockwise.
  Multigraph g(2 * 64);
  const Multigraph a = make_grid2d(8, 8);
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    g.add_edge(a.edge_u(e), a.edge_v(e), a.edge_weight(e));
    g.add_edge(a.edge_u(e) + 64, a.edge_v(e) + 64, a.edge_weight(e));
  }
  LaplacianSolver solver(g);
  EXPECT_EQ(solver.info().components, 2);
  Vector b = random_rhs(g.num_vertices(), 4);
  Vector x(b.size(), 0.0);
  const SolveStats stats = solver.solve(b, x, 1e-8);
  EXPECT_TRUE(stats.converged);
  // Residual check on the full system.
  Vector lx(b.size());
  solver.apply_laplacian(x, lx);
  // b itself may have per-component means; compare against projected b.
  Vector b_proj = b;
  const Components comps = connected_components(g);
  project_out_ones_per_component(b_proj, comps.label, comps.count);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    num += (lx[i] - b_proj[i]) * (lx[i] - b_proj[i]);
    den += b_proj[i] * b_proj[i];
  }
  EXPECT_LE(std::sqrt(num / den), 1e-7);
}

}  // namespace
}  // namespace parlap
