// Determinism under varying OpenMP thread counts, for every randomized
// component. This is the property that makes the parallel implementation
// debuggable: any run is reproducible serially.
#include <gtest/gtest.h>

#include <numeric>

#include <omp.h>

#include "core/approx_schur.hpp"
#include "core/block_cholesky.hpp"
#include "core/five_dd.hpp"
#include "core/sparsify.hpp"
#include "core/spanning_tree.hpp"
#include "graph/generators.hpp"

namespace parlap {
namespace {

/// Runs `fn` at 1 thread and at max threads, returning both results.
template <typename Fn>
auto with_thread_counts(Fn&& fn) {
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  auto serial = fn();
  omp_set_num_threads(saved);
  auto parallel = fn();
  return std::pair{std::move(serial), std::move(parallel)};
}

void expect_same_graph(const Multigraph& a, const Multigraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_u(e), b.edge_u(e));
    EXPECT_EQ(a.edge_v(e), b.edge_v(e));
    EXPECT_EQ(a.edge_weight(e), b.edge_weight(e));  // bit-exact
  }
}

TEST(ThreadDeterminism, FiveDdSubset) {
  const Multigraph g = make_erdos_renyi(2000, 10000, 3);
  const auto [serial, parallel] = with_thread_counts([&] {
    return five_dd_subset(g, g.weighted_degrees(), 7).f;
  });
  EXPECT_EQ(serial, parallel);
}

TEST(ThreadDeterminism, BlockCholeskyApply) {
  const Multigraph g = make_grid2d(25, 25);
  const auto [serial, parallel] = with_thread_counts([&] {
    const BlockCholeskyChain chain = BlockCholeskyChain::build(g, 9);
    Vector b(static_cast<std::size_t>(g.num_vertices()));
    std::iota(b.begin(), b.end(), 0.0);
    project_out_ones(b);
    Vector y(b.size());
    chain.apply(b, y);
    return y;
  });
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]);
  }
}

TEST(ThreadDeterminism, ApproxSchur) {
  const Multigraph g = make_erdos_renyi(600, 3000, 5);
  std::vector<Vertex> c(40);
  std::iota(c.begin(), c.end(), Vertex{0});
  const auto [serial, parallel] = with_thread_counts(
      [&] { return approx_schur(g, c, 11).schur; });
  expect_same_graph(serial, parallel);
}

TEST(ThreadDeterminism, SpanningTree) {
  const Multigraph g = make_grid2d(15, 15);
  const auto [serial, parallel] =
      with_thread_counts([&] { return sample_spanning_tree(g, 13); });
  expect_same_graph(serial, parallel);
}

TEST(ThreadDeterminism, Sparsifier) {
  const Multigraph g = make_complete(120);
  const auto [serial, parallel] = with_thread_counts(
      [&] { return spectral_sparsify(g, 0.5, 15).graph; });
  expect_same_graph(serial, parallel);
}

}  // namespace
}  // namespace parlap
