// Cross-module property tests: algebraic invariances the whole pipeline
// must satisfy regardless of its internal randomness.
#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "linalg/laplacian_op.hpp"
#include "support/rng.hpp"

namespace parlap {
namespace {

Vector random_rhs(Vertex n, std::uint64_t seed) {
  Vector b(static_cast<std::size_t>(n));
  Rng rng(seed, RngTag::kTest, 21);
  for (auto& v : b) v = rng.next_in(-1.0, 1.0);
  project_out_ones(b);
  return b;
}

TEST(PipelineProperty, SolveIsLinearInRhs) {
  const Multigraph g = make_grid2d(12, 12);
  LaplacianSolver solver(g);
  const Vector b1 = random_rhs(144, 1);
  const Vector b2 = random_rhs(144, 2);
  Vector combo(144);
  for (std::size_t i = 0; i < 144; ++i) combo[i] = 3.0 * b1[i] - 0.5 * b2[i];

  Vector x1(144, 0.0), x2(144, 0.0), xc(144, 0.0);
  solver.solve(b1, x1, 1e-11);
  solver.solve(b2, x2, 1e-11);
  solver.solve(combo, xc, 1e-11);
  for (std::size_t i = 0; i < 144; ++i) {
    EXPECT_NEAR(xc[i], 3.0 * x1[i] - 0.5 * x2[i], 1e-6);
  }
}

TEST(PipelineProperty, RhsScalingScalesSolution) {
  const Multigraph g = make_random_regular(200, 4, 3);
  LaplacianSolver solver(g);
  const Vector b = random_rhs(200, 4);
  Vector b10(200);
  for (std::size_t i = 0; i < 200; ++i) b10[i] = 10.0 * b[i];
  Vector x(200, 0.0), x10(200, 0.0);
  solver.solve(b, x, 1e-11);
  solver.solve(b10, x10, 1e-11);
  for (std::size_t i = 0; i < 200; ++i) EXPECT_NEAR(x10[i], 10.0 * x[i], 1e-6);
}

TEST(PipelineProperty, WeightScalingInvertsScalesSolution) {
  // L(c * w) = c L(w), so x(c*w) = x(w) / c.
  Multigraph g = make_erdos_renyi(150, 600, 5);
  Multigraph g5(150);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    g5.add_edge(g.edge_u(e), g.edge_v(e), 5.0 * g.edge_weight(e));
  }
  LaplacianSolver s1(g);
  LaplacianSolver s5(g5);
  const Vector b = random_rhs(150, 6);
  Vector x1(150, 0.0), x5(150, 0.0);
  s1.solve(b, x1, 1e-11);
  s5.solve(b, x5, 1e-11);
  for (std::size_t i = 0; i < 150; ++i) EXPECT_NEAR(x5[i], x1[i] / 5.0, 1e-6);
}

TEST(PipelineProperty, RepeatedSolvesAreIdentical) {
  // The factorization is immutable; repeated solves of the same system
  // must agree bit-for-bit.
  const Multigraph g = make_barbell(30, 15);
  LaplacianSolver solver(g);
  const Vector b = random_rhs(g.num_vertices(), 7);
  Vector xa(b.size(), 0.0), xb(b.size(), 0.0);
  solver.solve(b, xa, 1e-9);
  solver.solve(b, xb, 1e-9);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(xa[i], xb[i]);
}

TEST(PipelineProperty, SolutionInvariantUnderEdgeOrderPermutation) {
  // Same graph, edges listed in a different order: solutions agree to
  // solver accuracy (the sampling differs, the linear system does not).
  const Multigraph g = make_erdos_renyi(120, 500, 8);
  Multigraph shuffled(120);
  for (EdgeId e = g.num_edges(); e-- > 0;) {
    shuffled.add_edge(g.edge_u(e), g.edge_v(e), g.edge_weight(e));
  }
  const Vector b = random_rhs(120, 9);
  Vector x1(120, 0.0), x2(120, 0.0);
  LaplacianSolver s1(g);
  LaplacianSolver s2(shuffled);
  s1.solve(b, x1, 1e-11);
  s2.solve(b, x2, 1e-11);
  for (std::size_t i = 0; i < 120; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-6);
}

TEST(PipelineProperty, MultiEdgesEquivalentToSummedWeights) {
  // Three parallel multi-edges == one edge with the summed weight.
  Multigraph multi(50);
  Multigraph simple(50);
  const Multigraph base = make_cycle(50);
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    multi.add_edge(base.edge_u(e), base.edge_v(e), 0.5);
    multi.add_edge(base.edge_u(e), base.edge_v(e), 0.25);
    multi.add_edge(base.edge_u(e), base.edge_v(e), 0.25);
    simple.add_edge(base.edge_u(e), base.edge_v(e), 1.0);
  }
  const Vector b = random_rhs(50, 10);
  Vector xm(50, 0.0), xs(50, 0.0);
  LaplacianSolver sm(multi);
  LaplacianSolver ss(simple);
  sm.solve(b, xm, 1e-11);
  ss.solve(b, xs, 1e-11);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_NEAR(xm[i], xs[i], 1e-6);
}

TEST(PipelineProperty, ExtremeWeightRatios) {
  // 1e8 dynamic range in weights must not break convergence.
  Multigraph g = make_grid2d(10, 10);
  apply_weights(g, WeightModel::power_law(1e-4, 1e4, 2.0), 11);
  LaplacianSolver solver(g);
  const Vector b = random_rhs(100, 12);
  Vector x(100, 0.0);
  const SolveStats st = solver.solve(b, x, 1e-8);
  EXPECT_TRUE(st.converged);
  const LaplacianOperator op(g);
  const Vector lx = op.apply(x);
  double num = 0.0;
  for (std::size_t i = 0; i < 100; ++i) num += (lx[i] - b[i]) * (lx[i] - b[i]);
  EXPECT_LE(std::sqrt(num) / norm2(b), 1e-7);
}

TEST(PipelineProperty, StarGraphHighDegreeHub) {
  // Degree n-1 hub: stresses the 5-DD filter and walk sampling.
  const Multigraph g = make_star(2000);
  LaplacianSolver solver(g);
  const Vector b = random_rhs(2000, 13);
  Vector x(2000, 0.0);
  const SolveStats st = solver.solve(b, x, 1e-8);
  EXPECT_TRUE(st.converged);
}

TEST(PipelineProperty, TinyGraphs) {
  for (Vertex n : {2, 3, 5}) {
    Multigraph g(n);
    for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, 1.0 + v);
    LaplacianSolver solver(g);
    Vector b(static_cast<std::size_t>(n), 0.0);
    b[0] = 1.0;
    b[static_cast<std::size_t>(n - 1)] = -1.0;
    Vector x(static_cast<std::size_t>(n), 0.0);
    const SolveStats st = solver.solve(b, x, 1e-10);
    EXPECT_TRUE(st.converged);
  }
}

}  // namespace
}  // namespace parlap
