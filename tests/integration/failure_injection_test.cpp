// Failure-injection tests: misuse and stress paths must fail loudly (or
// recover measurably), never silently corrupt results.
#include <gtest/gtest.h>

#include <numeric>

#include "core/five_dd.hpp"
#include "core/terminal_walks.hpp"
#include "graph/generators.hpp"

namespace parlap {
namespace {

struct Partition {
  std::vector<Vertex> f_index, c_index;
  Vertex nf = 0, nc = 0;
};

Partition partition_from(const Multigraph& g, std::span<const Vertex> f) {
  Partition p;
  const Vertex n = g.num_vertices();
  p.f_index.assign(static_cast<std::size_t>(n), kInvalidVertex);
  p.c_index.assign(static_cast<std::size_t>(n), kInvalidVertex);
  for (std::size_t i = 0; i < f.size(); ++i) {
    p.f_index[static_cast<std::size_t>(f[i])] = static_cast<Vertex>(i);
  }
  for (Vertex v = 0; v < n; ++v) {
    if (p.f_index[static_cast<std::size_t>(v)] == kInvalidVertex) {
      p.c_index[static_cast<std::size_t>(v)] = p.nc++;
    }
  }
  p.nf = static_cast<Vertex>(f.size());
  return p;
}

TEST(FailureInjection, WalksOnNonFiveDdSetThrowAfterRetries) {
  // F = the whole interior of a long path is maximally NOT 5-DD: a walk
  // from the middle needs ~n^2 steps to escape, far beyond the cap, so
  // the retry budget must exhaust with a clear error.
  const Vertex n = 400;
  const Multigraph g = make_path(n);
  std::vector<Vertex> f(static_cast<std::size_t>(n) - 2);
  std::iota(f.begin(), f.end(), Vertex{1});
  const Partition p = partition_from(g, f);
  const WalkGraph wg = build_walk_graph(g, p.f_index, p.nf);
  WalkOptions opts;
  opts.max_retries = 4;
  EXPECT_THROW((void)terminal_walks(g, wg, p.f_index, p.c_index, p.nc, 1, 0,
                                    nullptr, opts),
               std::runtime_error);
}

TEST(FailureInjection, TinyWalkCapRecoversViaRetries) {
  // A legal 5-DD instance with an artificially tiny cap: walks retry
  // (observable in stats) but the output stays structurally valid. The
  // complete graph is used because its 5-DD subsets retain internal
  // edges (on grids F is an independent set and every walk has length
  // <= 1, so a cap of 1 never triggers).
  const Multigraph g = make_complete(100);
  const FiveDdResult fdd = five_dd_subset(g, g.weighted_degrees(), 3);
  const Partition p = partition_from(g, fdd.f);
  const WalkGraph wg = build_walk_graph(g, p.f_index, p.nf);
  WalkOptions opts;
  opts.max_walk_steps = 1;
  opts.max_retries = 200;
  WalkStats stats;
  const Multigraph h = terminal_walks(g, wg, p.f_index, p.c_index, p.nc, 5,
                                      0, &stats, opts);
  EXPECT_GT(stats.retries, 0);
  EXPECT_LE(h.num_edges(), g.num_edges());
  h.validate();
  EXPECT_LE(stats.max_walk_len, 1);
}

TEST(FailureInjection, FiveDdImpossibleTargetExhaustsRounds) {
  // accept_fraction = 1.0 can never be met (a connected graph has no
  // all-vertex 5-DD set); the round cap must fire.
  const Multigraph g = make_cycle(100);
  FiveDdOptions opts;
  opts.sample_fraction = 1.0;
  opts.accept_fraction = 1.0;
  opts.max_rounds = 5;
  EXPECT_THROW((void)five_dd_subset(g, g.weighted_degrees(), 1, opts),
               std::runtime_error);
}

TEST(FailureInjection, WalkGraphRowsMatchPartition) {
  // Mismatched f_index / nf must be caught by the size checks.
  const Multigraph g = make_path(10);
  std::vector<Vertex> bad_index(5, kInvalidVertex);  // wrong length
  std::vector<Vertex> c_index(10, 0);
  const WalkGraph wg;  // empty
  EXPECT_THROW((void)terminal_walks(g, wg, bad_index, c_index, 1, 1, 0),
               std::runtime_error);
}

}  // namespace
}  // namespace parlap
