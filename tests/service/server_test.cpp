// SolveServer unit tests: in-process daemon, raw-socket clients.
//
// These cover the protocol state machine and the survival properties at
// the C++ layer — deterministic shed at depth 0, malformed/oversized
// lines, concurrent clients agreeing on solution hashes, drain — with
// the server's I/O and worker threads live, so the TSan preset (labels
// service + parallel) checks the queue/results handoffs for real. The
// black-box suites in tests/serve/ drive the installed binary.
#include "service/server.hpp"

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace parlap::service {
namespace {

std::string test_socket_path() {
  static int counter = 0;
  return "/tmp/parlap_srv_" + std::to_string(::getpid()) + "_" +
         std::to_string(++counter) + ".sock";
}

/// In-process server on its own thread; drains on destruction.
class TestServer {
 public:
  explicit TestServer(ServerOptions opt) : server_(std::move(opt)) {
    server_.start();
    thread_ = std::thread([this] { server_.serve(); });
  }

  ~TestServer() {
    server_.request_drain();
    thread_.join();
  }

  SolveServer& operator*() { return server_; }
  SolveServer* operator->() { return &server_; }

 private:
  SolveServer server_;
  std::thread thread_;
};

/// Blocking line-oriented client over a unix socket.
class Client {
 public:
  explicit Client(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return connected_; }

  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(framed.size()));
  }

  /// Next response line, or "" on timeout/EOF.
  std::string read_line(int timeout_ms = 30000) {
    while (true) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, timeout_ms) <= 0) return "";
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return "";
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

/// Minimal field probe — responses are flat one-line JSON, so a
/// substring check against the serialized key:value pair suffices.
bool has_field(const std::string& line, const std::string& fragment) {
  return line.find(fragment) != std::string::npos;
}

std::string extract_hash(const std::string& line) {
  const std::string key = "\"solution_hash\":\"";
  const std::size_t at = line.find(key);
  if (at == std::string::npos) return "";
  return line.substr(at + key.size(), 16);
}

ServerOptions base_options(const std::string& path) {
  ServerOptions opt;
  opt.socket_path = path;
  opt.workers = 2;
  opt.cache_budget_entries = 1 << 20;
  return opt;
}

constexpr const char* kJobA =
    R"({"type":"solve","id":"a","graph":"grid2d:12,12","eps":1e-6,"seed":7})";

TEST(SolveServer, PingPongAndStats) {
  const std::string path = test_socket_path();
  TestServer server(base_options(path));
  Client c(path);
  ASSERT_TRUE(c.connected());

  c.send_line(R"({"type":"ping"})");
  EXPECT_TRUE(has_field(c.read_line(), "\"type\":\"pong\""));

  c.send_line(R"({"type":"stats"})");
  const std::string stats = c.read_line();
  EXPECT_TRUE(has_field(stats, "\"type\":\"stats\""));
  EXPECT_TRUE(has_field(stats, "\"queue_depth\":0"));
  EXPECT_TRUE(has_field(stats, "\"p99\":"));
  EXPECT_TRUE(has_field(stats, "\"hit_rate\":"));
}

TEST(SolveServer, SolveStreamsResultWithHash) {
  const std::string path = test_socket_path();
  TestServer server(base_options(path));
  Client c(path);
  ASSERT_TRUE(c.connected());

  c.send_line(kJobA);
  const std::string r = c.read_line();
  ASSERT_TRUE(has_field(r, "\"status\":\"ok\"")) << r;
  EXPECT_TRUE(has_field(r, "\"id\":\"a\""));
  EXPECT_TRUE(has_field(r, "\"converged\":true"));
  const std::string hash = extract_hash(r);
  ASSERT_EQ(hash.size(), 16u);
  for (const char ch : hash) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(ch))) << hash;
  }
  EXPECT_EQ(server->completed_jobs(), 1u);
}

TEST(SolveServer, ConcurrentClientsAgreeOnHashes) {
  const std::string path = test_socket_path();
  ServerOptions opt = base_options(path);
  opt.workers = 4;
  TestServer server(opt);

  constexpr int kClients = 4;
  std::vector<std::string> hashes(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client c(path);
      ASSERT_TRUE(c.connected());
      // Same job from every client; the hash must not depend on which
      // worker runs it or in what order requests arrive.
      c.send_line(kJobA);
      hashes[static_cast<std::size_t>(i)] = extract_hash(c.read_line());
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(hashes[0].size(), 16u);
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(hashes[static_cast<std::size_t>(i)], hashes[0]);
  }

  // Different seed -> different rhs -> (overwhelmingly) different hash.
  Client c(path);
  ASSERT_TRUE(c.connected());
  c.send_line(
      R"({"type":"solve","id":"z","graph":"grid2d:12,12","eps":1e-6,"seed":8})");
  EXPECT_NE(extract_hash(c.read_line()), hashes[0]);
}

TEST(SolveServer, ShedsEverythingAtDepthZero) {
  const std::string path = test_socket_path();
  ServerOptions opt = base_options(path);
  opt.max_queue_depth = 0;  // deterministic overload
  opt.retry_after_ms = 77;
  TestServer server(opt);
  Client c(path);
  ASSERT_TRUE(c.connected());

  c.send_line(kJobA);
  const std::string r = c.read_line();
  EXPECT_TRUE(has_field(r, "\"status\":\"overloaded\"")) << r;
  EXPECT_TRUE(has_field(r, "\"retry_after_ms\":77"));
  EXPECT_TRUE(has_field(r, "\"id\":\"a\""));

  // Shed is an answer, not a failure: the session keeps working.
  c.send_line(R"({"type":"ping"})");
  EXPECT_TRUE(has_field(c.read_line(), "\"type\":\"pong\""));
}

TEST(SolveServer, MalformedAndOversizedLinesKeepSessionAlive) {
  const std::string path = test_socket_path();
  ServerOptions opt = base_options(path);
  opt.max_line_bytes = 256;
  TestServer server(opt);
  Client c(path);
  ASSERT_TRUE(c.connected());

  c.send_line("{this is not json");
  EXPECT_TRUE(has_field(c.read_line(), "\"status\":\"error\""));

  c.send_line(R"({"type":"solve","id":"bad id!","graph":"grid2d:4"})");
  const std::string schema_err = c.read_line();
  EXPECT_TRUE(has_field(schema_err, "\"status\":\"error\"")) << schema_err;
  EXPECT_TRUE(has_field(schema_err, "request: ")) << schema_err;

  c.send_line(std::string(1000, 'x'));
  EXPECT_TRUE(has_field(c.read_line(), "exceeds 256 bytes"));

  // All three errors were structured responses on a live session.
  c.send_line(kJobA);
  EXPECT_TRUE(has_field(c.read_line(), "\"status\":\"ok\""));
}

TEST(SolveServer, DrainFinishesInFlightThenCloses) {
  const std::string path = test_socket_path();
  TestServer server(base_options(path));
  Client c(path);
  ASSERT_TRUE(c.connected());

  // Pipeline a few jobs, then drain while they are queued/running.
  for (int i = 0; i < 4; ++i) {
    c.send_line(R"({"type":"solve","id":"d)" + std::to_string(i) +
                R"(","graph":"grid2d:16,16","eps":1e-6,"seed":)" +
                std::to_string(i) + "}");
  }
  // The first result proves all four lines were read and admitted
  // together (they are handled in one read pass, results come later);
  // only then pull the plug, so the drain has real in-flight work.
  int ok = 0;
  if (has_field(c.read_line(), "\"status\":\"ok\"")) ++ok;
  server->request_drain();
  for (int i = 1; i < 4; ++i) {
    const std::string r = c.read_line();
    if (has_field(r, "\"status\":\"ok\"")) ++ok;
  }
  EXPECT_EQ(ok, 4);        // every admitted job completed and flushed
  EXPECT_EQ(c.read_line(5000), "");  // then the server closed the socket
  EXPECT_EQ(server->completed_jobs(), 4u);
}

std::uint64_t extract_request_id(const std::string& line) {
  const std::string key = "\"request_id\":";
  const std::size_t at = line.find(key);
  if (at == std::string::npos) return 0;
  return std::strtoull(line.c_str() + at + key.size(), nullptr, 10);
}

TEST(SolveServer, SolveResponsesCarryUniqueRequestIdsAndTimings) {
  const std::string path = test_socket_path();
  TestServer server(base_options(path));
  Client c(path);
  ASSERT_TRUE(c.connected());

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    c.send_line(R"({"type":"solve","id":"r)" + std::to_string(i) +
                R"(","graph":"grid2d:12,12","eps":1e-6,"seed":7})");
  }
  for (int i = 0; i < 3; ++i) {
    const std::string r = c.read_line();
    ASSERT_TRUE(has_field(r, "\"status\":\"ok\"")) << r;
    // Every result carries the admission-minted request id plus the
    // phase breakdown (queue wait / cache verdict / build / solve).
    const std::uint64_t rid = extract_request_id(r);
    EXPECT_GT(rid, 0u) << r;
    ids.push_back(rid);
    EXPECT_TRUE(has_field(r, "\"timings\":{\"queue_wait_ms\":")) << r;
    EXPECT_TRUE(has_field(r, "\"solve_ms\":")) << r;
    EXPECT_TRUE(has_field(r, "\"cache\":\"")) << r;
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST(SolveServer, MetricsVerbReturnsPrometheusText) {
  const std::string path = test_socket_path();
  TestServer server(base_options(path));
  Client c(path);
  ASSERT_TRUE(c.connected());

  c.send_line(kJobA);
  ASSERT_TRUE(has_field(c.read_line(), "\"status\":\"ok\""));

  c.send_line(R"({"type":"metrics"})");
  const std::string r = c.read_line();
  ASSERT_TRUE(has_field(r, "\"type\":\"metrics\"")) << r;
  EXPECT_TRUE(has_field(r, "\"status\":\"ok\"")) << r;
  EXPECT_TRUE(
      has_field(r, "\"content_type\":\"text/plain; version=0.0.4"))
      << r;
  // The escaped exposition text rides in "text": spot-check the serve
  // families and the histogram framing (names are a stability contract,
  // see docs/OBSERVABILITY.md).
  EXPECT_TRUE(has_field(r, "parlap_serve_requests_total")) << r;
  EXPECT_TRUE(has_field(r, "parlap_serve_completed_total")) << r;
  EXPECT_TRUE(has_field(r, "parlap_serve_solve_seconds_bucket")) << r;
  EXPECT_TRUE(has_field(r, "# TYPE parlap_serve_requests_total counter"))
      << r;
}

TEST(SolveServer, HttpScrapeOverJsonListener) {
  const std::string path = test_socket_path();
  TestServer server(base_options(path));
  Client c(path);
  ASSERT_TRUE(c.connected());

  // A raw HTTP/1.1 GET on the same listener: the first line flips the
  // session into scrape mode, the blank line after the headers fires
  // the response, and the server closes when the reply is flushed.
  c.send_line("GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r");
  std::string all;
  for (std::string line = c.read_line(); !line.empty();
       line = c.read_line(5000)) {
    all += line;
    all += '\n';
  }
  EXPECT_EQ(all.compare(0, 15, "HTTP/1.1 200 OK"), 0) << all;
  EXPECT_TRUE(has_field(all, "Content-Type: text/plain; version=0.0.4"))
      << all;
  EXPECT_TRUE(has_field(all, "Connection: close")) << all;
  EXPECT_TRUE(has_field(all, "# TYPE parlap_serve_requests_total counter"))
      << all;

  // An unknown target is a structured 404, not a dropped connection.
  Client c2(path);
  ASSERT_TRUE(c2.connected());
  c2.send_line("GET /nope HTTP/1.1\r\n\r");
  EXPECT_EQ(c2.read_line().compare(0, 22, "HTTP/1.1 404 Not Found"), 0);
}

TEST(SolveServer, StatsEchoesConfigAndWindow) {
  const std::string path = test_socket_path();
  ServerOptions opt = base_options(path);
  opt.max_queue_depth = 99;
  opt.slow_ms = 12.5;
  TestServer server(opt);
  Client c(path);
  ASSERT_TRUE(c.connected());

  c.send_line(kJobA);
  ASSERT_TRUE(has_field(c.read_line(), "\"status\":\"ok\""));

  c.send_line(R"({"type":"stats"})");
  const std::string stats = c.read_line();
  // The config echo lets clients and harnesses learn the deployed
  // limits in-band instead of hard-coding launch flags.
  EXPECT_TRUE(has_field(stats, "\"config\":{")) << stats;
  EXPECT_TRUE(has_field(stats, "\"workers\":2")) << stats;
  EXPECT_TRUE(has_field(stats, "\"queue_limit\":99")) << stats;
  EXPECT_TRUE(has_field(stats, "\"slow_ms\":12.5")) << stats;
  // And the rolling window reports alongside lifetime. The registry is
  // process-global, so earlier tests in this binary contribute too —
  // assert at least this test's solve landed in the last-60s view.
  EXPECT_TRUE(has_field(stats, "\"window_seconds\":60")) << stats;
  const std::string wkey = "\"window\":{\"window_seconds\":60,\"completed\":";
  const std::size_t at = stats.find(wkey);
  ASSERT_NE(at, std::string::npos) << stats;
  EXPECT_GE(std::strtoull(stats.c_str() + at + wkey.size(), nullptr, 10), 1u);
}

TEST(SolveServer, DisconnectPurgesQueuedJobs) {
  const std::string path = test_socket_path();
  ServerOptions opt = base_options(path);
  opt.workers = 1;
  TestServer server(opt);

  {
    Client flood(path);
    ASSERT_TRUE(flood.connected());
    for (int i = 0; i < 8; ++i) {
      flood.send_line(R"({"type":"solve","id":"f)" + std::to_string(i) +
                      R"(","graph":"grid2d:24,24","eps":1e-8,"seed":)" +
                      std::to_string(100 + i) + "}");
    }
    // Leave scope: the client disconnects with most jobs still queued.
  }

  // The queue must return to empty (slots not leaked) and the server
  // must stay responsive to a fresh client.
  Client c(path);
  ASSERT_TRUE(c.connected());
  for (int attempt = 0; attempt < 200; ++attempt) {
    c.send_line(R"({"type":"stats"})");
    const std::string stats = c.read_line();
    if (has_field(stats, "\"queue_depth\":0") &&
        has_field(stats, "\"in_flight\":0")) {
      SUCCEED();
      return;
    }
    ::usleep(50 * 1000);
  }
  FAIL() << "queue never drained after client disconnect";
}

}  // namespace
}  // namespace parlap::service
