// SolveEngine integration tests: job-file parsing, batch determinism
// across worker counts (the acceptance property of the subsystem),
// cache sharing, and per-job failure isolation.
#include "service/solve_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/job_file.hpp"

namespace parlap::service {
namespace {

std::vector<SolveJob> mixed_jobs() {
  return parse_jobs_jsonl(std::string(R"(
# three jobs on one graph (cache sharing), two more families
{"id": "a1", "graph": "ws:150,4,0.2", "method": "parlap", "rhs": "random", "seed": 7}
{"id": "a2", "graph": "ws:150,4,0.2", "method": "parlap", "rhs": "random:1", "seed": 7}
{"id": "a3", "graph": "ws:150,4,0.2", "method": "parlap", "rhs": "demand:0,80", "seed": 7}
{"id": "b1", "graph": "grid2d:10", "method": "cg-jacobi", "rhs": "random", "seed": 5}
{"id": "c1", "graph": "gnm:120,480", "method": "cg", "rhs": "random", "seed": 3, "eps": 1e-7}
)"));
}

TEST(JobFile, ParsesFieldsAndDefaults) {
  const std::vector<SolveJob> jobs = parse_jobs_jsonl(std::string(
      "{\"graph\": \"grid2d:4\"}\n"
      "{\"id\": \"x\", \"graph\": \"file:g.mtx\", \"laplacian\": true, "
      "\"weights\": \"uniform:1,2\", \"method\": \"dense\", "
      "\"rhs\": \"demand:0,3\", \"eps\": 1e-6, \"seed\": 9, "
      "\"split_scale\": 0.2, \"max_iterations\": 50, "
      "\"project_rhs\": true}\n"));
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].id, "job1");  // line-number default
  EXPECT_EQ(jobs[0].method, "parlap");
  EXPECT_EQ(jobs[0].rhs, "random");
  EXPECT_DOUBLE_EQ(jobs[0].eps, 1e-8);
  EXPECT_EQ(jobs[0].seed, 42u);
  EXPECT_FALSE(jobs[0].laplacian);

  EXPECT_EQ(jobs[1].id, "x");
  EXPECT_EQ(jobs[1].graph, "file:g.mtx");
  EXPECT_TRUE(jobs[1].laplacian);
  EXPECT_EQ(jobs[1].weights, "uniform:1,2");
  EXPECT_EQ(jobs[1].method, "dense");
  EXPECT_EQ(jobs[1].rhs, "demand:0,3");
  EXPECT_DOUBLE_EQ(jobs[1].eps, 1e-6);
  EXPECT_EQ(jobs[1].seed, 9u);
  EXPECT_DOUBLE_EQ(jobs[1].split_scale, 0.2);
  EXPECT_EQ(jobs[1].max_iterations, 50);
  EXPECT_TRUE(jobs[1].project_rhs);
}

TEST(JobFile, SkipsCommentsAndBlankLines) {
  const auto jobs = parse_jobs_jsonl(std::string(
      "# a comment\n\n   \n{\"graph\": \"path:4\"}\n# tail\n"));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].id, "job4");  // ids count physical lines
}

TEST(JobFile, RejectsBadLinesWithLineNumbers) {
  const auto expect_throw_mentioning = [](const std::string& text,
                                          const std::string& needle) {
    try {
      (void)parse_jobs_jsonl(text);
      FAIL() << "expected failure for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_throw_mentioning("{\"method\": \"parlap\"}", "graph");
  expect_throw_mentioning("{\"graph\": \"p:4\", \"bogus\": 1}", "bogus");
  expect_throw_mentioning("not json", "json");
  expect_throw_mentioning("[1, 2]", "object");
  expect_throw_mentioning("{\"graph\": \"p:4\", \"eps\": 2.0}", "eps");
  expect_throw_mentioning("{\"graph\": \"p:4\", \"seed\": -1}", "seed");
  expect_throw_mentioning("{\"graph\": \"p:4\", \"seed\": 1e300}", "seed");
  expect_throw_mentioning("{\"graph\": \"p:4\", \"seed\": 1.5}", "seed");
  // Ids become file names; path separators and friends are rejected.
  expect_throw_mentioning("{\"id\": \"a/b\", \"graph\": \"p:4\"}", "id");
  expect_throw_mentioning("{\"id\": \"\", \"graph\": \"p:4\"}", "id");
  expect_throw_mentioning(
      "{\"id\": \"d\", \"graph\": \"p:4\"}\n{\"id\": \"d\", \"graph\": "
      "\"p:4\"}",
      "duplicate");
}

TEST(SolveEngine, BatchSolvesAndSharesFactorizations) {
  SolveEngine engine({.workers = 2});
  const BatchResult batch = engine.run(mixed_jobs());
  ASSERT_EQ(batch.jobs.size(), 5u);
  for (const JobResult& r : batch.jobs) {
    EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
    EXPECT_TRUE(r.report.converged) << r.id;
    EXPECT_GT(r.solution_hash, 0u) << r.id;
  }
  // a1/a2/a3 share one factorization: exactly 2 hits among them.
  EXPECT_EQ(batch.stats.cache.misses, 3u);
  EXPECT_EQ(batch.stats.cache.hits, 2u);
  EXPECT_EQ(batch.stats.jobs, 5);
  EXPECT_EQ(batch.stats.succeeded, 5);
  EXPECT_EQ(batch.stats.converged, 5);
  EXPECT_GT(batch.stats.solves_per_second, 0.0);
  EXPECT_GE(batch.stats.p95_solve_seconds, batch.stats.p50_solve_seconds);
}

TEST(SolveEngine, DeterministicAcrossWorkerCountsAndOrder) {
  // The acceptance property: same job file + seeds => bit-identical
  // solutions whatever the worker count or completion order. Runs the
  // batch with 1 and 4 workers, plus a shuffled copy, and compares the
  // full solution vectors (not just hashes).
  std::vector<SolveJob> jobs = mixed_jobs();
  EngineOptions keep;
  keep.keep_solutions = true;

  keep.workers = 1;
  const BatchResult serial = SolveEngine(keep).run(jobs);
  keep.workers = 4;
  const BatchResult pooled = SolveEngine(keep).run(jobs);

  std::vector<SolveJob> reversed(jobs.rbegin(), jobs.rend());
  const BatchResult reordered = SolveEngine(keep).run(reversed);

  ASSERT_EQ(serial.jobs.size(), pooled.jobs.size());
  for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
    const JobResult& a = serial.jobs[i];
    const JobResult& b = pooled.jobs[i];
    ASSERT_TRUE(a.ok && b.ok) << a.id;
    EXPECT_EQ(a.solution_hash, b.solution_hash) << a.id;
    EXPECT_EQ(a.solution, b.solution) << a.id;  // bitwise
    EXPECT_EQ(a.report.iterations, b.report.iterations) << a.id;
    EXPECT_EQ(a.report.relative_residual, b.report.relative_residual)
        << a.id;

    // The same job submitted in reverse order lands at the mirrored
    // index with the identical solution.
    const JobResult& c = reordered.jobs[reordered.jobs.size() - 1 - i];
    ASSERT_EQ(c.id, a.id);
    EXPECT_EQ(a.solution, c.solution) << a.id;
  }
}

TEST(SolveEngine, BlockedBatchIsBitIdenticalAndGroupsPanels) {
  // Panel grouping: at block_width 4 the three ws-graph jobs share one
  // solve_panel call, yet every job's solution is bit-identical to the
  // width-1 (scalar) run at any worker count.
  const std::vector<SolveJob> jobs = mixed_jobs();
  EngineOptions scalar;
  scalar.keep_solutions = true;
  const BatchResult reference = SolveEngine(scalar).run(jobs);
  EXPECT_EQ(reference.stats.panels, 5);
  EXPECT_DOUBLE_EQ(reference.stats.panel_occupancy, 1.0);

  for (const int workers : {1, 4}) {
    EngineOptions blocked;
    blocked.keep_solutions = true;
    blocked.block_width = 4;
    blocked.workers = workers;
    SolveEngine engine(blocked);
    const BatchResult batch = engine.run(jobs);
    ASSERT_EQ(batch.jobs.size(), reference.jobs.size());
    for (std::size_t i = 0; i < batch.jobs.size(); ++i) {
      const JobResult& a = reference.jobs[i];
      const JobResult& b = batch.jobs[i];
      ASSERT_TRUE(a.ok && b.ok) << a.id;
      EXPECT_EQ(a.solution_hash, b.solution_hash) << a.id;
      EXPECT_EQ(a.solution, b.solution) << a.id;  // bitwise
      EXPECT_EQ(a.report.iterations, b.report.iterations) << a.id;
      EXPECT_EQ(a.report.relative_residual, b.report.relative_residual)
          << a.id;
    }
    // a1/a2/a3 collapse into one panel; b1 and c1 stay singletons.
    EXPECT_EQ(batch.stats.panels, 3);
    ASSERT_EQ(batch.panels.size(), 3u);
    std::vector<int> widths;
    for (const PanelStats& p : batch.panels) {
      widths.push_back(p.width);
      EXPECT_GE(p.solve_seconds, 0.0);
      EXPECT_GE(p.apply_seconds, 0.0);
    }
    std::sort(widths.begin(), widths.end());
    EXPECT_EQ(widths, (std::vector<int>{1, 1, 3}));
    EXPECT_NEAR(batch.stats.panel_occupancy, 5.0 / (3.0 * 4.0), 1e-12);
    // Cache counters count panels: three lookups, all misses on a cold
    // engine (the ws jobs share one lookup instead of one hit each).
    EXPECT_EQ(batch.stats.cache.misses, 3u);
    EXPECT_EQ(batch.stats.cache.hits, 0u);
  }
}

TEST(SolveEngine, BlockedBatchIsolatesBadJobsInsideAPanel) {
  // A panel member with an unsolvable rhs fails alone; its panel-mates
  // still solve (and match their scalar solutions).
  const std::vector<SolveJob> jobs = parse_jobs_jsonl(std::string(R"(
{"id": "ok1", "graph": "grid2d:7", "method": "parlap", "rhs": "random"}
{"id": "bad", "graph": "grid2d:7", "method": "parlap", "rhs": "demand:0,99999"}
{"id": "ok2", "graph": "grid2d:7", "method": "parlap", "rhs": "random:2"}
)"));
  EngineOptions scalar;
  scalar.keep_solutions = true;
  const BatchResult reference = SolveEngine(scalar).run(jobs);

  EngineOptions blocked = scalar;
  blocked.block_width = 3;
  const BatchResult batch = SolveEngine(blocked).run(jobs);
  ASSERT_EQ(batch.jobs.size(), 3u);
  EXPECT_TRUE(batch.jobs[0].ok);
  EXPECT_FALSE(batch.jobs[1].ok);
  EXPECT_NE(batch.jobs[1].error.find("demand"), std::string::npos);
  EXPECT_TRUE(batch.jobs[2].ok);
  EXPECT_EQ(batch.jobs[0].solution, reference.jobs[0].solution);
  EXPECT_EQ(batch.jobs[2].solution, reference.jobs[2].solution);
  EXPECT_EQ(batch.stats.panels, 1);
  ASSERT_EQ(batch.panels.size(), 1u);
  EXPECT_EQ(batch.panels[0].width, 3);  // grouped before the rhs failed
}

TEST(SolveEngine, JobRhsIsKeyedByJobIdentity) {
  SolveJob job;
  job.id = "r1";
  job.seed = 5;
  const Vector a = job_rhs(job, 50);
  const Vector same = job_rhs(job, 50);
  EXPECT_EQ(a, same);

  SolveJob other = job;
  other.id = "r2";
  EXPECT_NE(a, job_rhs(other, 50));  // different id, different stream

  SolveJob indexed = job;
  indexed.rhs = "random:3";
  EXPECT_NE(a, job_rhs(indexed, 50));

  SolveJob demand = job;
  demand.rhs = "demand:2,7";
  const Vector d = job_rhs(demand, 10);
  EXPECT_DOUBLE_EQ(d[2], 1.0);
  EXPECT_DOUBLE_EQ(d[7], -1.0);

  SolveJob bad = job;
  bad.rhs = "demand:0,0";
  EXPECT_THROW((void)job_rhs(bad, 10), std::invalid_argument);
  bad.rhs = "wat";
  EXPECT_THROW((void)job_rhs(bad, 10), std::invalid_argument);
  // strtoull would wrap "-1" to 2^64-1 and skip whitespace; both are
  // rejected up front.
  bad.rhs = "random:-1";
  EXPECT_THROW((void)job_rhs(bad, 10), std::invalid_argument);
  bad.rhs = "random: 5";
  EXPECT_THROW((void)job_rhs(bad, 10), std::invalid_argument);
}

TEST(SolveEngine, FailedJobsAreIsolated) {
  const std::vector<SolveJob> jobs = parse_jobs_jsonl(std::string(R"(
{"id": "good", "graph": "grid2d:6", "method": "parlap"}
{"id": "bad-method", "graph": "grid2d:6", "method": "no-such-method"}
{"id": "bad-graph", "graph": "nope:3"}
{"id": "bad-demand", "graph": "grid2d:6", "rhs": "demand:0,99999"}
{"id": "also-good", "graph": "grid2d:6", "method": "cg"}
)"));
  SolveEngine engine({.workers = 3});
  const BatchResult batch = engine.run(jobs);
  ASSERT_EQ(batch.jobs.size(), 5u);
  EXPECT_TRUE(batch.jobs[0].ok);
  EXPECT_FALSE(batch.jobs[1].ok);
  EXPECT_NE(batch.jobs[1].error.find("no-such-method"), std::string::npos);
  EXPECT_FALSE(batch.jobs[2].ok);
  EXPECT_FALSE(batch.jobs[3].ok);
  EXPECT_TRUE(batch.jobs[4].ok);
  EXPECT_EQ(batch.stats.failed, 3);
  EXPECT_EQ(batch.stats.succeeded, 2);
}

TEST(SolveEngine, ImbalancedRhsFailsUnlessProjected) {
  // Two components (edge list, vertex count inferred); a demand rhs
  // across them has no exact solution.
  const std::string path =
      std::string(::testing::TempDir()) + "engine_disconnected.el";
  {
    std::ofstream os(path);
    os << "0 1 1.0\n2 3 1.0\n";
  }
  const auto run_one = [&](bool project) {
    std::string text = R"({"id": "x", "graph": "file:)" + path +
                       R"(", "rhs": "demand:0,3")" +
                       (project ? R"(, "project_rhs": true})" : "}");
    SolveEngine engine({.workers = 1});
    return engine.run(parse_jobs_jsonl(text)).jobs.at(0);
  };
  const JobResult refused = run_one(false);
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.error.find("incompatible"), std::string::npos);
  const JobResult projected = run_one(true);
  EXPECT_TRUE(projected.ok) << projected.error;
  std::remove(path.c_str());
}

TEST(SolveEngine, CacheBudgetCausesEvictions) {
  // Many distinct graphs under a tiny budget: the cache must evict and
  // the batch must still complete correctly.
  std::vector<SolveJob> jobs;
  for (int i = 0; i < 6; ++i) {
    SolveJob j;
    j.id = "g" + std::to_string(i);
    j.graph = "grid2d:";
    j.graph += std::to_string(8 + i);
    jobs.push_back(j);
  }
  EngineOptions opts;
  opts.workers = 1;
  opts.cache_budget_entries = 1;  // at most the MRU entry stays
  SolveEngine engine(opts);
  const BatchResult batch = engine.run(jobs);
  for (const JobResult& r : batch.jobs) {
    EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
  }
  EXPECT_EQ(batch.stats.cache.misses, 6u);
  EXPECT_GE(batch.stats.cache.evictions, 5u);
  EXPECT_EQ(batch.stats.cache.resident_count, 1u);
}

}  // namespace
}  // namespace parlap::service
