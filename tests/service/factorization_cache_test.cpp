// FactorizationCache unit tests: hit/miss accounting, LRU eviction under
// a budget, single-flight builds, and failure propagation.
#include "service/factorization_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/any_solver.hpp"

namespace parlap::service {
namespace {

/// A solver stub with a controllable cost; solve() is never called here.
class StubSolver : public AnySolver {
 public:
  explicit StubSolver(EdgeId cost) : cost_(cost) {}

  [[nodiscard]] RunReport solve(std::span<const double>, std::span<double>,
                                double) const override {
    return {};
  }
  [[nodiscard]] const std::string& method() const noexcept override {
    return method_;
  }
  [[nodiscard]] double setup_seconds() const noexcept override { return 0; }
  [[nodiscard]] Vertex dimension() const noexcept override { return 1; }
  [[nodiscard]] EdgeId stored_entries() const noexcept override {
    return cost_;
  }

 private:
  std::string method_ = "stub";
  EdgeId cost_;
};

FactorizationKey key_for(std::uint64_t graph_hash) {
  FactorizationKey k;
  k.graph_hash = graph_hash;
  k.method = "stub";
  return k;
}

TEST(FactorizationCache, HitAndMissCounting) {
  FactorizationCache cache(/*budget_entries=*/0);
  int builds = 0;
  const auto factory = [&] {
    ++builds;
    return std::make_unique<StubSolver>(10);
  };

  const auto [first, hit1] = cache.get_or_create(key_for(1), factory);
  EXPECT_FALSE(hit1);
  const auto [second, hit2] = cache.get_or_create(key_for(1), factory);
  EXPECT_TRUE(hit2);
  EXPECT_EQ(first.get(), second.get());  // the same instance is shared
  EXPECT_EQ(builds, 1);

  const auto [other, hit3] = cache.get_or_create(key_for(2), factory);
  EXPECT_FALSE(hit3);
  EXPECT_EQ(builds, 2);

  const FactorizationCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.resident_count, 2u);
  EXPECT_EQ(s.resident_entries, 20u);
}

TEST(FactorizationCache, DistinctConfigsAreDistinctEntries) {
  FactorizationCache cache(0);
  const auto factory = [] { return std::make_unique<StubSolver>(1); };
  FactorizationKey a = key_for(1);
  FactorizationKey b = key_for(1);
  b.seed = 7;
  FactorizationKey c = key_for(1);
  c.split_scale = 0.5;
  FactorizationKey d = key_for(1);
  d.method = "other";
  (void)cache.get_or_create(a, factory);
  (void)cache.get_or_create(b, factory);
  (void)cache.get_or_create(c, factory);
  (void)cache.get_or_create(d, factory);
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(FactorizationCache, EvictsLeastRecentlyUsedUnderBudget) {
  FactorizationCache cache(/*budget_entries=*/25);
  const auto make10 = [] { return std::make_unique<StubSolver>(10); };

  (void)cache.get_or_create(key_for(1), make10);  // resident: {1}
  (void)cache.get_or_create(key_for(2), make10);  // resident: {1, 2}
  (void)cache.get_or_create(key_for(1), make10);  // touch 1 -> LRU is 2
  (void)cache.get_or_create(key_for(3), make10);  // 30 > 25: evict 2

  FactorizationCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.resident_entries, 20u);

  // 2 was evicted (miss on re-access); 1 survived (hit).
  const auto [r1, hit1] = cache.get_or_create(key_for(1), make10);
  EXPECT_TRUE(hit1);
  const auto [r2, hit2] = cache.get_or_create(key_for(2), make10);
  EXPECT_FALSE(hit2);
}

TEST(FactorizationCache, KeepsTheMostRecentOverBudgetEntry) {
  // A single factorization larger than the whole budget is still cached
  // (evicting it would thrash); everything else gets dropped.
  FactorizationCache cache(/*budget_entries=*/5);
  (void)cache.get_or_create(key_for(1),
                            [] { return std::make_unique<StubSolver>(100); });
  EXPECT_EQ(cache.stats().resident_count, 1u);
  const auto [r, hit] = cache.get_or_create(
      key_for(1), [] { return std::make_unique<StubSolver>(100); });
  EXPECT_TRUE(hit);

  (void)cache.get_or_create(key_for(2),
                            [] { return std::make_unique<StubSolver>(100); });
  const FactorizationCache::Stats s = cache.stats();
  EXPECT_EQ(s.resident_count, 1u);  // old giant evicted, new giant kept
  EXPECT_EQ(s.evictions, 1u);
}

TEST(FactorizationCache, FactoryFailureLeavesCacheUsable) {
  FactorizationCache cache(0);
  const auto boom = []() -> std::unique_ptr<AnySolver> {
    throw std::runtime_error("factorization failed");
  };
  EXPECT_THROW((void)cache.get_or_create(key_for(1), boom),
               std::runtime_error);
  // The failed key is not poisoned: a later good factory succeeds.
  const auto [r, hit] = cache.get_or_create(
      key_for(1), [] { return std::make_unique<StubSolver>(1); });
  EXPECT_FALSE(hit);
  EXPECT_NE(r, nullptr);
  EXPECT_EQ(cache.stats().resident_count, 1u);
}

TEST(FactorizationCache, PrecisionIsPartOfTheKey) {
  // An fp32 factorization must never be served to an fp64 request (or
  // vice versa): same graph, same method, different precision = two
  // distinct entries. kAuto is the engine's problem — it resolves the
  // mode BEFORE keying, so the cache only ever sees fp64/fp32.
  FactorizationCache cache(0);
  const auto factory = [] { return std::make_unique<StubSolver>(10); };
  FactorizationKey f64 = key_for(1);
  f64.precision = Precision::kFp64;
  FactorizationKey f32 = key_for(1);
  f32.precision = Precision::kFp32;
  (void)cache.get_or_create(f64, factory);
  const auto [r, hit] = cache.get_or_create(f32, factory);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().misses, 2u);
  const auto [r64, hit64] = cache.get_or_create(f64, factory);
  EXPECT_TRUE(hit64);
}

/// Stub whose byte footprint is narrower than 8 bytes/entry — the shape
/// of an fp32 factorization.
class NarrowStubSolver final : public StubSolver {
 public:
  NarrowStubSolver(EdgeId entries, std::size_t bytes)
      : StubSolver(entries), bytes_(bytes) {}
  [[nodiscard]] std::size_t stored_bytes() const noexcept override {
    return bytes_;
  }

 private:
  std::size_t bytes_;
};

TEST(FactorizationCache, BudgetChargesBytesNotEntries) {
  // The budget is denominated in fp64-equivalent entries =
  // ceil(stored_bytes() / 8). A 10-entry solver storing float values
  // (40 bytes) costs 5, so twice as many fp32 factorizations fit in the
  // same budget as fp64 ones of equal structure.
  FactorizationCache cache(/*budget_entries=*/0);
  (void)cache.get_or_create(key_for(1),
                            [] { return std::make_unique<StubSolver>(10); });
  EXPECT_EQ(cache.stats().resident_entries, 10u);  // 80 bytes / 8
  (void)cache.get_or_create(key_for(2), [] {
    return std::make_unique<NarrowStubSolver>(10, 40);  // fp32: half
  });
  EXPECT_EQ(cache.stats().resident_entries, 15u);
  (void)cache.get_or_create(key_for(3), [] {
    return std::make_unique<NarrowStubSolver>(10, 1);  // cost floor is 1
  });
  EXPECT_EQ(cache.stats().resident_entries, 16u);
}

TEST(FactorizationCache, ConcurrentRequestsAreSingleFlight) {
  FactorizationCache cache(0);
  std::atomic<int> builds{0};
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<AnySolver>> got(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      const auto [solver, hit] = cache.get_or_create(key_for(1), [&] {
        ++builds;
        // Widen the race window so waiters actually wait.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return std::make_unique<StubSolver>(10);
      });
      got[static_cast<std::size_t>(t)] = solver;
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(builds.load(), 1);  // one build served all eight callers
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got[static_cast<std::size_t>(t)].get(), got[0].get());
  }
  EXPECT_EQ(cache.stats().hits + cache.stats().misses,
            static_cast<std::uint64_t>(kThreads));
}

}  // namespace
}  // namespace parlap::service
