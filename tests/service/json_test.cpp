// Unit tests for the minimal JSON reader behind the batch job format.
#include "service/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace parlap::service {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.5").as_number(), -3.5);
  EXPECT_DOUBLE_EQ(parse_json("1e-8").as_number(), 1e-8);
  EXPECT_DOUBLE_EQ(parse_json("2.5E+3").as_number(), 2500.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_json("  \"pad\"  ").as_string(), "pad");
}

TEST(Json, ParsesStringsWithEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d")").as_string(), "a\"b\\c/d");
  EXPECT_EQ(parse_json(R"("tab\there\nline")").as_string(), "tab\there\nline");
  EXPECT_EQ(parse_json(R"("\u0041\u00e9")").as_string(), "A\xC3\xA9");
  EXPECT_EQ(parse_json(R"("\u20ac")").as_string(), "\xE2\x82\xAC");  // €
}

TEST(Json, ParsesArraysAndObjects) {
  const JsonValue v = parse_json(R"({"a": [1, 2, 3], "b": {"c": true}})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), 2.0);
  const JsonValue* c = v.find("b")->find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->as_bool());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_TRUE(parse_json("[]").as_array().empty());
  EXPECT_TRUE(parse_json("{}").as_object().empty());
}

TEST(Json, DuplicateKeysKeepLast) {
  EXPECT_DOUBLE_EQ(parse_json(R"({"k": 1, "k": 2})").find("k")->as_number(),
                   2.0);
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "tru", "\"unterminated", "{\"a\" 1}", "{\"a\":}",
        "[1 2]", "1 2", "nan", "inf", "--1", "1.2.3", "\"bad\\q\"",
        "\"\\u12\"", "{\"a\":1,}", "[1,]", "\x01"}) {
    EXPECT_THROW((void)parse_json(bad), std::invalid_argument) << bad;
  }
}

TEST(Json, RejectsPathologicalNestingWithoutOverflow) {
  // 200k open brackets must be a parse error, not a stack overflow.
  const std::string deep(200000, '[');
  EXPECT_THROW((void)parse_json(deep), std::invalid_argument);
  std::string mixed;
  for (int i = 0; i < 1000; ++i) mixed += "{\"a\":[";
  EXPECT_THROW((void)parse_json(mixed), std::invalid_argument);
  // 64 levels (the documented limit) still parse.
  std::string ok(64, '[');
  ok += std::string(64, ']');
  EXPECT_EQ(parse_json(ok).as_array().size(), 1u);
  // Empty containers must release their depth: many flat {} / [] are
  // fine however numerous.
  std::string flat = "[";
  for (int i = 0; i < 200; ++i) flat += i == 0 ? "{}" : ",{}";
  for (int i = 0; i < 200; ++i) flat += ",[]";
  flat += "]";
  EXPECT_EQ(parse_json(flat).as_array().size(), 400u);
}

TEST(Json, ErrorsNameTheOffset) {
  try {
    (void)parse_json("{\"a\": 1, \"b\": }");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(Json, AccessorsThrowOnKindMismatch) {
  const JsonValue v = parse_json("42");
  EXPECT_THROW((void)v.as_string(), std::invalid_argument);
  EXPECT_THROW((void)v.as_array(), std::invalid_argument);
  EXPECT_THROW((void)v.as_bool(), std::invalid_argument);
  EXPECT_THROW((void)parse_json("\"s\"").as_number(), std::invalid_argument);
}

}  // namespace
}  // namespace parlap::service
