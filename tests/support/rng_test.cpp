// Tests for the Philox counter-based RNG: determinism, stream
// independence, and distribution sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "support/rng.hpp"

namespace parlap {
namespace {

TEST(Philox, BlockIsDeterministic) {
  const auto a = Philox::block(1, 2, 3, 4);
  const auto b = Philox::block(1, 2, 3, 4);
  EXPECT_EQ(a, b);
}

TEST(Philox, BlockChangesWithEveryInput) {
  const auto base = Philox::block(1, 2, 3, 4);
  EXPECT_NE(base, Philox::block(2, 2, 3, 4));
  EXPECT_NE(base, Philox::block(1, 3, 3, 4));
  EXPECT_NE(base, Philox::block(1, 2, 4, 4));
  EXPECT_NE(base, Philox::block(1, 2, 3, 5));
}

TEST(Rng, SameKeySameStream) {
  Rng a(7, RngTag::kTest, 9);
  Rng b(7, RngTag::kTest, 9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentIndexDifferentStream) {
  Rng a(7, RngTag::kTest, 9);
  Rng b(7, RngTag::kTest, 10);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DifferentTagDifferentStream) {
  Rng a(7, RngTag::kTest, 9);
  Rng b(7, RngTag::kFiveDd, 9);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(1, RngTag::kTest, 0);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(2, RngTag::kTest, 0);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(3, RngTag::kTest, 0);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowUniformChiSquared) {
  Rng rng(4, RngTag::kTest, 0);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 9 dof; 99.9th percentile ~ 27.9.
  EXPECT_LT(chi2, 30.0);
}

TEST(Rng, BitBalance) {
  Rng rng(5, RngTag::kTest, 0);
  int ones = 0;
  constexpr int kWords = 10000;
  for (int i = 0; i < kWords; ++i) ones += __builtin_popcountll(rng.next_u64());
  const double frac = static_cast<double>(ones) / (64.0 * kWords);
  EXPECT_NEAR(frac, 0.5, 0.005);
}

TEST(Rng, NoShortCycle) {
  Rng rng(6, RngTag::kTest, 0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.next_u64());
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(SplitMix, InjectiveOnSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(splitmix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace parlap
