#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/stats.hpp"

namespace parlap {
namespace {

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all;
  OnlineStats a;
  OnlineStats b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(static_cast<double>(i));
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Percentile, NearestRank) {
  const std::vector<double> v{5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(LogLogSlope, RecoversPowerLaw) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 10; ++i) {
    x.push_back(static_cast<double>(i) * 100.0);
    y.push_back(3.0 * std::pow(x.back(), 1.7));
  }
  EXPECT_NEAR(log_log_slope(x, y), 1.7, 1e-9);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-3.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(9), 2);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

}  // namespace
}  // namespace parlap
