#include <gtest/gtest.h>

#include <sstream>

#include "support/check.hpp"
#include "support/table.hpp"

namespace parlap {
namespace {

TEST(TextTable, RendersAlignedRows) {
  TextTable t("demo");
  t.set_header({"name", "n", "value"});
  t.add_row({std::string("grid"), std::int64_t{100}, 1.5});
  t.add_row({std::string("rmat"), std::int64_t{2048}, 0.25});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("grid"), std::string::npos);
  EXPECT_NE(out.find("2048"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, CsvOutput) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({std::int64_t{1}, 2.5});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2.5\n");
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({std::int64_t{1}}), std::runtime_error);
}

TEST(Check, ThrowsWithMessage) {
  try {
    PARLAP_CHECK_MSG(false, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace parlap
