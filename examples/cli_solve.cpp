// Command-line Laplacian solver: read a graph (edge-list format per
// graph/io.hpp, or Matrix Market when the file ends in .mtx), solve
// L x = b, write the solution — the library as a standalone tool.
//
//   example_cli_solve GRAPH [RHS] [--eps 1e-8] [--seed 42] [--out FILE]
//                     [--leverage] [--stats]
//
// RHS file: one value per line (vertex order). Without RHS, a unit
// s-t demand between vertex 0 and n-1 is used.
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>

#include "core/solver.hpp"
#include "graph/io.hpp"
#include "graph/matrix_market.hpp"
#include "support/timer.hpp"

namespace {

void usage() {
  std::cerr << "usage: example_cli_solve GRAPH [RHS] [--eps E] [--seed S] "
               "[--out FILE] [--leverage] [--stats]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parlap;
  if (argc < 2) {
    usage();
    return 2;
  }
  std::string graph_path;
  std::string rhs_path;
  std::string out_path;
  double eps = 1e-8;
  bool want_stats = false;
  SolverOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--eps" && i + 1 < argc) {
      eps = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--leverage") {
      opts.split = SplitStrategy::kLeverage;
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg.rfind("--", 0) == 0) {
      usage();
      return 2;
    } else if (graph_path.empty()) {
      graph_path = arg;
    } else if (rhs_path.empty()) {
      rhs_path = arg;
    } else {
      usage();
      return 2;
    }
  }

  const bool is_mtx = graph_path.size() > 4 &&
                      graph_path.substr(graph_path.size() - 4) == ".mtx";
  Multigraph g = is_mtx ? read_matrix_market_file(graph_path)
                        : read_edge_list_file(graph_path);
  std::cerr << "graph: " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges\n";

  Vector b(static_cast<std::size_t>(g.num_vertices()), 0.0);
  if (!rhs_path.empty()) {
    std::ifstream rf(rhs_path);
    if (!rf.good()) {
      std::cerr << "cannot open rhs file " << rhs_path << '\n';
      return 2;
    }
    for (auto& v : b) rf >> v;
    if (rf.fail()) {
      std::cerr << "rhs file too short (need " << b.size() << " values)\n";
      return 2;
    }
  } else {
    b.front() = 1.0;
    b.back() = -1.0;
    std::cerr << "no rhs given; using unit demand between vertices 0 and "
              << g.num_vertices() - 1 << '\n';
  }

  WallTimer timer;
  LaplacianSolver solver(g, opts);
  std::cerr << "factor: " << timer.seconds() << " s (depth "
            << solver.info().depth << ", " << solver.info().split_edges
            << " split multi-edges, " << solver.info().components
            << " component(s))\n";

  Vector x(b.size(), 0.0);
  timer.reset();
  const SolveStats st = solver.solve(b, x, eps);
  std::cerr << "solve: " << timer.seconds() << " s, " << st.iterations
            << " iterations, relative residual " << st.relative_residual
            << (st.converged ? "" : "  [DID NOT CONVERGE]") << '\n';

  if (want_stats) {
    std::cerr << "chain: depth " << solver.info().depth << ", jacobi terms "
              << solver.info().jacobi_terms << ", stored entries "
              << solver.info().stored_entries << '\n';
  }

  std::ostream* os = &std::cout;
  std::ofstream of;
  if (!out_path.empty()) {
    of.open(out_path);
    if (!of.good()) {
      std::cerr << "cannot open output file " << out_path << '\n';
      return 2;
    }
    os = &of;
  }
  os->precision(std::numeric_limits<double>::max_digits10);
  for (const double v : x) *os << v << '\n';
  return st.converged ? 0 : 1;
}
