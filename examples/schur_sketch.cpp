// Sparse Schur complement sketching (§7, Theorem 7.1): compress a large
// network onto a small terminal set while approximately preserving all
// terminal effective resistances.
//
// Scenario: a data-center-style network (3D grid) with a handful of
// gateway nodes; the sketch is a tiny multigraph on the gateways that a
// downstream tool can query instead of the full network.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/approx_schur.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace parlap;
  const Vertex side = argc > 1 ? std::atoi(argv[1]) : 14;
  const double eps = 0.3;

  Multigraph g = make_grid3d(side, side, side);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 3);
  const Vertex n = g.num_vertices();

  // Terminals: the 8 corners of the cube.
  std::vector<Vertex> terminals;
  for (const Vertex z : {Vertex{0}, side - 1}) {
    for (const Vertex y : {Vertex{0}, side - 1}) {
      for (const Vertex x : {Vertex{0}, side - 1}) {
        terminals.push_back((z * side + y) * side + x);
      }
    }
  }
  std::cout << "network: " << n << " nodes, " << g.num_edges()
            << " links; sketching onto " << terminals.size()
            << " gateways (eps = " << eps << ")\n";

  WallTimer timer;
  const ApproxSchurResult sketch =
      approx_schur_simple(g, terminals, eps, /*seed=*/5, /*scale=*/0.1);
  std::cout << "sketch: " << sketch.schur.num_edges() << " multi-edges, "
            << sketch.levels << " elimination levels, "
            << timer.seconds() << " s\n";

  // Validate: corner-to-corner effective resistance in the full network
  // vs the sketch, via Laplacian solves on both.
  auto effective_resistance = [](const Multigraph& graph, Vertex s,
                                 Vertex t) {
    LaplacianSolver solver(graph);
    Vector b(static_cast<std::size_t>(graph.num_vertices()), 0.0);
    b[static_cast<std::size_t>(s)] = 1.0;
    b[static_cast<std::size_t>(t)] = -1.0;
    Vector x(b.size(), 0.0);
    solver.solve(b, x, 1e-10);
    return x[static_cast<std::size_t>(s)] - x[static_cast<std::size_t>(t)];
  };

  bool ok = true;
  std::cout << "pair  R_full      R_sketch    ratio\n";
  for (const auto& [i, j] : {std::pair<int, int>{0, 7}, {0, 3}, {1, 6}}) {
    const double r_full = effective_resistance(
        g, terminals[static_cast<std::size_t>(i)],
        terminals[static_cast<std::size_t>(j)]);
    const double r_sketch = effective_resistance(
        sketch.schur, static_cast<Vertex>(i), static_cast<Vertex>(j));
    const double ratio = r_sketch / r_full;
    std::cout << i << "-" << j << "   " << r_full << "   " << r_sketch
              << "   " << ratio << '\n';
    // Theorem 7.1: resistances preserved within e^{+-eps}.
    ok = ok && ratio > std::exp(-eps) && ratio < std::exp(eps);
  }
  std::cout << (ok ? "all pairs within e^eps\n" : "VIOLATION\n");
  return ok ? 0 : 1;
}
