// Electrical flows [CKMST11] — the Laplacian-solver primitive inside
// interior-point methods for maximum flow, from the paper's introduction.
//
// Given a resistor network and an s-t demand, the potentials phi solve
// L phi = b with b = chi_s - chi_t; the electrical flow on edge (u,v) is
// w(u,v) (phi_u - phi_v). We verify flow conservation and compute the
// effective resistance and flow energy.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/solver.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace parlap;
  const int scale = argc > 1 ? std::atoi(argv[1]) : 13;

  // A heavy-tailed "road network"-ish RMAT graph with mixed conductances.
  Multigraph g = make_rmat(scale, EdgeId{8} << scale, /*seed=*/11);
  apply_weights(g, WeightModel::power_law(0.1, 10.0, 2.2), 12);
  const Vertex n = g.num_vertices();
  const Vertex s = 0;
  const Vertex t = n - 1;
  std::cout << "network: " << n << " nodes, " << g.num_edges()
            << " resistors\n";

  LaplacianSolver solver(g);
  Vector b(static_cast<std::size_t>(n), 0.0);
  b[static_cast<std::size_t>(s)] = 1.0;
  b[static_cast<std::size_t>(t)] = -1.0;
  Vector phi(b.size(), 0.0);
  const SolveStats stats = solver.solve(b, phi, 1e-10);
  std::cout << "solve: " << stats.iterations << " iterations, residual "
            << stats.relative_residual << '\n';

  // Edge flows + conservation check (net flow at interior nodes ~ 0).
  Vector net(static_cast<std::size_t>(n), 0.0);
  double energy = 0.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Vertex u = g.edge_u(e);
    const Vertex v = g.edge_v(e);
    const double flow = g.edge_weight(e) * (phi[static_cast<std::size_t>(u)] -
                                            phi[static_cast<std::size_t>(v)]);
    net[static_cast<std::size_t>(u)] -= flow;
    net[static_cast<std::size_t>(v)] += flow;
    energy += flow * flow / g.edge_weight(e);
  }
  double worst_violation = 0.0;
  for (Vertex v = 0; v < n; ++v) {
    if (v == s || v == t) continue;
    worst_violation = std::max(worst_violation,
                               std::abs(net[static_cast<std::size_t>(v)]));
  }
  const double reff = phi[static_cast<std::size_t>(s)] -
                      phi[static_cast<std::size_t>(t)];
  std::cout << "effective resistance s-t: " << reff << '\n';
  std::cout << "flow energy (== R_eff for unit flow): " << energy << '\n';
  std::cout << "worst conservation violation: " << worst_violation << '\n';
  // Thomson's principle: energy of the electrical flow equals R_eff.
  const bool ok = stats.converged && worst_violation < 1e-6 &&
                  std::abs(energy - reff) < 1e-4 * std::abs(reff);
  return ok ? 0 : 1;
}
