// Quickstart: build a graph, solve a Laplacian system, check the residual.
//
//   ./example_quickstart [grid-side]
#include <cstdlib>
#include <iostream>

#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "linalg/laplacian_op.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace parlap;
  const Vertex side = argc > 1 ? std::atoi(argv[1]) : 200;

  // 1. A weighted graph. Any connected (or not) multigraph works.
  Multigraph g = make_grid2d(side, side);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), /*seed=*/1);
  std::cout << "graph: " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges\n";

  // 2. Factor once (Algorithm 1); solve many times (Algorithms 2+5).
  WallTimer timer;
  SolverOptions options;
  options.seed = 42;
  LaplacianSolver solver(g, options);
  std::cout << "factor: " << timer.seconds() << " s, depth d = "
            << solver.info().depth
            << ", split multi-edges = " << solver.info().split_edges << '\n';

  // 3. A right-hand side (demands); the solver projects out the mean.
  Vector b(static_cast<std::size_t>(g.num_vertices()), 0.0);
  b.front() = 1.0;   // inject one unit of current at the corner...
  b.back() = -1.0;   // ...and extract it at the opposite corner.

  Vector x(b.size(), 0.0);
  timer.reset();
  const SolveStats stats = solver.solve(b, x, /*eps=*/1e-8);
  std::cout << "solve: " << timer.seconds() << " s, " << stats.iterations
            << " Richardson iterations, relative residual "
            << stats.relative_residual << '\n';

  // 4. x holds the electrical potentials; x[s]-x[t] is the effective
  // resistance between the corners.
  std::cout << "effective resistance corner-to-corner: "
            << x.front() - x.back() << '\n';
  return stats.converged ? 0 : 1;
}
