// Scientific computing [Str86; BHV08]: implicit heat diffusion on a mesh.
//
// Backward-Euler for du/dt = -L u discretizes to (I + dt L) u_{t+1} = u_t.
// The shifted system is not a pure Laplacian, but grounding each mesh node
// to an ambient-temperature vertex with conductance 1/dt makes it one:
// on the augmented graph, a solve against L' restricted to the mesh block
// equals (I/dt + L)^-1 applied to u_t / dt. Each timestep reuses one
// factorization — the regime the paper's factor-once/solve-many design
// targets.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace parlap;
  const Vertex side = argc > 1 ? std::atoi(argv[1]) : 120;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 20;
  const double dt = 0.5;

  // Mesh + ambient vertex: edge (v, ambient) of weight 1/dt encodes the
  // backward-Euler identity shift.
  const Multigraph mesh = make_grid2d(side, side);
  const Vertex n = mesh.num_vertices();
  Multigraph g(n + 1);
  for (EdgeId e = 0; e < mesh.num_edges(); ++e) {
    g.add_edge(mesh.edge_u(e), mesh.edge_v(e), mesh.edge_weight(e));
  }
  const Vertex ambient = n;
  for (Vertex v = 0; v < n; ++v) g.add_edge(v, ambient, 1.0 / dt);

  std::cout << "mesh: " << side << "x" << side << ", dt = " << dt << ", "
            << steps << " implicit steps\n";
  WallTimer timer;
  LaplacianSolver solver(g);
  std::cout << "factor once: " << timer.seconds() << " s (depth "
            << solver.info().depth << ")\n";

  // Hot square in the center, ambient elsewhere.
  Vector u(static_cast<std::size_t>(n) + 1, 0.0);
  for (Vertex y = side / 2 - side / 10; y < side / 2 + side / 10; ++y) {
    for (Vertex x = side / 2 - side / 10; x < side / 2 + side / 10; ++x) {
      u[static_cast<std::size_t>(y * side + x)] = 100.0;
    }
  }

  auto total_heat = [&] {
    double s = 0.0;
    for (Vertex v = 0; v < n; ++v) s += u[static_cast<std::size_t>(v)];
    return s;
  };
  const double initial_heat = total_heat();
  double max_temp = 100.0;

  timer.reset();
  Vector b(u.size(), 0.0);
  Vector sol(u.size(), 0.0);
  for (int t = 0; t < steps; ++t) {
    // (I/dt + L) u' = u/dt  <=>  L' x = b with b_mesh = u/dt, grounded at
    // the ambient vertex (which absorbs the balancing -sum).
    double inject = 0.0;
    for (Vertex v = 0; v < n; ++v) {
      b[static_cast<std::size_t>(v)] = u[static_cast<std::size_t>(v)] / dt;
      inject += u[static_cast<std::size_t>(v)] / dt;
    }
    b[static_cast<std::size_t>(ambient)] = -inject;
    const SolveStats st = solver.solve(b, sol, 1e-10);
    if (!st.converged) return 1;
    // Temperatures are potentials relative to the ambient node.
    max_temp = 0.0;
    for (Vertex v = 0; v <= n; ++v) {
      u[static_cast<std::size_t>(v)] =
          sol[static_cast<std::size_t>(v)] -
          sol[static_cast<std::size_t>(ambient)];
      max_temp = std::max(max_temp, u[static_cast<std::size_t>(v)]);
    }
    u[static_cast<std::size_t>(ambient)] = 0.0;
  }
  std::cout << steps << " steps in " << timer.seconds() << " s\n";
  const double conservation = total_heat() / initial_heat;
  std::cout << "peak temperature " << max_temp
            << " (from 100); heat conserved to "
            << 100.0 * conservation
            << "% (backward Euler on a Laplacian conserves mass exactly)\n";
  // Diffusion must smooth the peak and conserve total heat.
  const bool ok = max_temp < 100.0 && max_temp > 0.0 &&
                  std::abs(conservation - 1.0) < 1e-6;
  return ok ? 0 : 1;
}
