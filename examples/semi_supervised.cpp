// Semi-supervised learning on graphs [ZGL03; ZBLWS04] — one of the
// motivating applications in the paper's introduction.
//
// Harmonic label propagation: labeled vertices are clamped to their label
// values (+1 / -1) and every unlabeled vertex takes the weighted average
// of its neighbors — exactly the Dirichlet problem solve_dirichlet()
// solves via the grounded-Laplacian reduction.
//
// Scenario: two noisy 6-regular clusters bridged by random cross edges;
// 2% of vertices carry labels.
#include <cstdlib>
#include <iostream>

#include "core/sddm.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace parlap;
  const Vertex cluster = argc > 1 ? std::atoi(argv[1]) : 3000;
  const std::uint64_t seed = 7;

  // Similarity graph: two random 6-regular clusters joined by a sparse
  // noisy cut (2% of intra-cluster edge count, at half weight).
  const Vertex n = 2 * cluster;
  Multigraph g(n);
  {
    const Multigraph a = make_random_regular(cluster, 6, seed);
    for (EdgeId e = 0; e < a.num_edges(); ++e) {
      g.add_edge(a.edge_u(e), a.edge_v(e), 1.0);
      g.add_edge(a.edge_u(e) + cluster, a.edge_v(e) + cluster, 1.0);
    }
    Rng rng(seed, RngTag::kGraphGen, 1);
    const EdgeId noise = a.num_edges() / 50;
    for (EdgeId e = 0; e < noise; ++e) {
      const auto u = static_cast<Vertex>(
          rng.next_below(static_cast<std::uint64_t>(cluster)));
      const auto v = static_cast<Vertex>(
          cluster + rng.next_below(static_cast<std::uint64_t>(cluster)));
      g.add_edge(u, v, 0.5);
    }
  }

  // Hard labels on every 50th vertex: the Dirichlet boundary.
  std::vector<Vertex> labeled;
  std::vector<double> labels;
  for (Vertex v = 0; v < n; v += 50) {
    labeled.push_back(v);
    labels.push_back(v < cluster ? 1.0 : -1.0);
  }
  std::cout << "similarity graph: " << n << " vertices, " << g.num_edges()
            << " edges, " << labeled.size() << " labeled\n";

  // Harmonic extension of the labels (ZGL03's "Gaussian fields" solution).
  WallTimer timer;
  Vector f(static_cast<std::size_t>(n), 0.0);
  const SolveStats stats =
      solve_dirichlet(g, labeled, labels, {}, f, 1e-8);
  std::cout << "harmonic extension: " << timer.seconds() << " s, "
            << stats.iterations << " iterations, residual "
            << stats.relative_residual << '\n';

  // Classify by sign(f) and score against ground truth.
  Vertex correct = 0;
  for (Vertex v = 0; v < n; ++v) {
    const bool predicted_first = f[static_cast<std::size_t>(v)] > 0.0;
    if (predicted_first == (v < cluster)) ++correct;
  }
  const double accuracy = static_cast<double>(correct) / n;
  std::cout << "label propagation accuracy: " << 100.0 * accuracy << "%\n";
  return stats.converged && accuracy > 0.9 ? 0 : 1;
}
